// Package verilog imports a structural Verilog-1995 subset into the
// netlist model, so gate-level output from ordinary synthesis flows can be
// analysed directly. Supported:
//
//   - module declarations with port lists, input/output/wire declarations
//     (scalar nets only), and endmodule;
//   - cell instantiations with named port connections:
//     INV_X1 g1(.A(n1), .Y(n2));
//   - instantiations of other modules in the same file (mapped to netlist
//     submodules, which the analyzer rolls up — they must be combinational);
//   - // line and /* block */ comments.
//
// Not supported (rejected with a clear error): vectors/buses, positional
// connections, assign statements, behavioural constructs, parameters.
//
// Verilog carries no clock-waveform or port-timing information; the
// importer returns a design without clocks or port timing references. The
// caller supplies them afterwards — see Constrain and the CLI's
// -verilog/-constraints flags.
package verilog

import (
	"fmt"
	"io"
	"strings"
	"unicode"

	"hummingbird/internal/failpoint"
	"hummingbird/internal/netlist"
)

// Import parses the Verilog source and returns the design for the module
// named top ("" selects the single module, or errors when several exist).
// Every other module in the file becomes a submodule definition of the
// result.
func Import(r io.Reader, top string) (*netlist.Design, error) {
	if err := failpoint.Hit("verilog.import"); err != nil {
		return nil, err
	}
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := lex(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var mods []*module
	for !p.eof() {
		m, err := p.module()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("verilog: no modules found")
	}
	byName := map[string]*module{}
	for _, m := range mods {
		if _, dup := byName[m.name]; dup {
			return nil, fmt.Errorf("verilog: duplicate module %q", m.name)
		}
		byName[m.name] = m
	}
	if top == "" {
		if len(mods) == 1 {
			top = mods[0].name
		} else {
			// The conventional choice: the module no other module
			// instantiates.
			instantiated := map[string]bool{}
			for _, m := range mods {
				for _, inst := range m.insts {
					instantiated[inst.ref] = true
				}
			}
			for _, m := range mods {
				if !instantiated[m.name] {
					if top != "" {
						return nil, fmt.Errorf("verilog: multiple top candidates (%s, %s); pass an explicit top", top, m.name)
					}
					top = m.name
				}
			}
			if top == "" {
				return nil, fmt.Errorf("verilog: no top module (instantiation cycle?)")
			}
		}
	}
	tm, ok := byName[top]
	if !ok {
		return nil, fmt.Errorf("verilog: top module %q not found", top)
	}
	d := tm.toDesign()
	for _, m := range mods {
		if m == tm {
			continue
		}
		d.AddModule(m.toDesign())
	}
	return d, nil
}

// ImportString is Import over a string.
func ImportString(src, top string) (*netlist.Design, error) {
	return Import(strings.NewReader(src), top)
}

// Constrain merges clock declarations and port timing references from a
// constraints design (typically parsed from the netlist format with only
// clock/input/output lines) into an imported design: clocks are copied and
// each port picks up the RefClock/RefEdge/Offset of its namesake. A clock
// whose name matches one of the design's input ports *replaces* that port —
// the Verilog clock input pin becomes the clock generator's output net, so
// existing connections to it (latch control pins, clock buffers) resolve
// unchanged. Constraint ports that do not exist in the target are errors,
// as is a direction mismatch.
func Constrain(d *netlist.Design, cons *netlist.Design) error {
	d.Clocks = append(d.Clocks, cons.Clocks...)
	for _, c := range cons.Clocks {
		if p := d.Port(c.Name); p != nil {
			if p.Dir != netlist.Input {
				return fmt.Errorf("verilog: clock %q collides with a non-input port", c.Name)
			}
			kept := d.Ports[:0]
			for _, dp := range d.Ports {
				if dp.Name != c.Name {
					kept = append(kept, dp)
				}
			}
			d.Ports = kept
		}
	}
	for _, cp := range cons.Ports {
		p := d.Port(cp.Name)
		if p == nil {
			return fmt.Errorf("verilog: constraints name port %q, which the design lacks", cp.Name)
		}
		if p.Dir != cp.Dir {
			return fmt.Errorf("verilog: port %q direction mismatch (%s vs %s)", cp.Name, p.Dir, cp.Dir)
		}
		p.RefClock, p.RefEdge, p.Offset = cp.RefClock, cp.RefEdge, cp.Offset
	}
	return nil
}

// --- module model ---

type vinst struct {
	name  string
	ref   string
	conns map[string]string
}

type module struct {
	name    string
	ports   []string
	inputs  map[string]bool
	outputs map[string]bool
	insts   []vinst
}

func (m *module) toDesign() *netlist.Design {
	d := netlist.New(m.name)
	for _, p := range m.ports {
		dir := netlist.Input
		if m.outputs[p] {
			dir = netlist.Output
		}
		d.AddPort(netlist.Port{Name: p, Dir: dir})
	}
	for _, in := range m.insts {
		d.AddInstance(netlist.Instance{Name: in.name, Ref: in.ref, Conns: in.conns})
	}
	return d
}

// --- lexer ---

type token struct {
	kind byte // 'i' identifier, 'p' punctuation
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("verilog: line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '\\':
			// Escaped identifier: backslash up to the next whitespace
			// (Verilog-1995 §2.7). The backslash is not part of the name.
			j := i + 1
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\r' && src[j] != '\n' {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("verilog: line %d: empty escaped identifier", line)
			}
			toks = append(toks, token{'i', src[i+1 : j], line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{'i', src[i:j], line})
			i = j
		case c >= '0' && c <= '9':
			// Numeric literals (incl. sized forms like 4'b0101) only occur
			// in unsupported constructs; lex them as 'n' tokens so the
			// parser can report the construct instead of the character.
			j := i
			for j < len(src) && (isIdentPart(rune(src[j])) || src[j] == '\'') {
				j++
			}
			toks = append(toks, token{'n', src[i:j], line})
			i = j
		case strings.IndexByte("();,.=#:", c) >= 0:
			// '=', '#' and ':' only appear in unsupported constructs;
			// lexing them lets the parser name the construct in its error.
			toks = append(toks, token{'p', string(c), line})
			i++
		case c == '[':
			return nil, fmt.Errorf("verilog: line %d: vectors/buses are not supported", line)
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) fail(format string, args ...interface{}) error {
	line := 0
	if !p.eof() {
		line = p.peek().line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("verilog: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != 'i' {
		p.pos--
		return "", p.fail("expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != 'p' || t.text != s {
		p.pos--
		return p.fail("expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) module() (*module, error) {
	kw, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if kw != "module" {
		return nil, p.fail("expected 'module', got %q", kw)
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &module{name: name, inputs: map[string]bool{}, outputs: map[string]bool{}}
	if p.peek().text == "(" {
		p.next()
		for p.peek().text != ")" {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			m.ports = append(m.ports, id)
			if p.peek().text == "," {
				p.next()
			}
		}
		p.next() // ')'
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != 'i' {
			return nil, p.fail("expected statement, got %q", t.text)
		}
		switch t.text {
		case "endmodule":
			p.next()
			// Ports must be declared input or output.
			for _, port := range m.ports {
				if !m.inputs[port] && !m.outputs[port] {
					return nil, fmt.Errorf("verilog: module %s: port %q has no direction declaration", m.name, port)
				}
			}
			return m, nil
		case "input", "output", "wire":
			kind := p.next().text
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				switch kind {
				case "input":
					m.inputs[id] = true
				case "output":
					m.outputs[id] = true
				}
				if p.peek().text != "," {
					break
				}
				p.next()
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case "assign", "always", "initial", "reg", "parameter":
			return nil, p.fail("behavioural construct %q is not supported (structural subset only)", t.text)
		default:
			inst, err := p.instance()
			if err != nil {
				return nil, err
			}
			m.insts = append(m.insts, inst)
		}
	}
}

func (p *parser) instance() (vinst, error) {
	var in vinst
	ref, err := p.expectIdent()
	if err != nil {
		return in, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return in, fmt.Errorf("%w (after cell %q; positional connections are not supported)", err, ref)
	}
	in.ref, in.name = ref, name
	in.conns = map[string]string{}
	if err := p.expectPunct("("); err != nil {
		return in, err
	}
	for p.peek().text != ")" {
		if err := p.expectPunct("."); err != nil {
			return in, fmt.Errorf("%w (positional connections are not supported)", err)
		}
		pin, err := p.expectIdent()
		if err != nil {
			return in, err
		}
		if err := p.expectPunct("("); err != nil {
			return in, err
		}
		// Empty connection .X() leaves the pin unconnected.
		if p.peek().text != ")" {
			net, err := p.expectIdent()
			if err != nil {
				return in, err
			}
			if _, dup := in.conns[pin]; dup {
				return in, p.fail("pin %q connected twice on instance %s", pin, name)
			}
			in.conns[pin] = net
		}
		if err := p.expectPunct(")"); err != nil {
			return in, err
		}
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // ')'
	if err := p.expectPunct(";"); err != nil {
		return in, err
	}
	return in, nil
}
