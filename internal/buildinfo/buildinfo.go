// Package buildinfo ties traces, metrics and bug reports to a build:
// it condenses debug.ReadBuildInfo into a stable, JSON-serialisable
// summary shared by the -version flags of both binaries and the
// daemon's /buildinfo endpoint.
package buildinfo

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the build summary.
type Info struct {
	// Path is the main module path (module name from go.mod).
	Path string `json:"path"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that produced the binary.
	GoVersion string `json:"goVersion"`
	// VCSRevision / VCSTime / VCSModified are the commit stamped into the
	// binary by the toolchain, when built inside a repository.
	VCSRevision string `json:"vcsRevision,omitempty"`
	VCSTime     string `json:"vcsTime,omitempty"`
	VCSModified bool   `json:"vcsModified,omitempty"`
}

// Collect reads the build info baked into the running binary. It always
// returns a usable Info: binaries built without module support still
// report the Go version.
func Collect() Info {
	info := Info{Version: "(unknown)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Path = bi.Main.Path
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.VCSRevision = s.Value
		case "vcs.time":
			info.VCSTime = s.Value
		case "vcs.modified":
			info.VCSModified = s.Value == "true"
		}
	}
	return info
}

// WriteVersion prints the one-line -version output for the named binary.
func WriteVersion(w io.Writer, binary string) {
	info := Collect()
	fmt.Fprintf(w, "%s %s", binary, info.Version)
	if info.VCSRevision != "" {
		rev := info.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(w, " (%s", rev)
		if info.VCSModified {
			fmt.Fprint(w, "+dirty")
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintf(w, " %s\n", info.GoVersion)
}

// WriteJSON serialises the build summary (the /buildinfo payload).
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Collect())
}
