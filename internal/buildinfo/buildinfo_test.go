package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectAlwaysUsable(t *testing.T) {
	info := Collect()
	if info.GoVersion == "" {
		t.Fatal("no Go version")
	}
	if info.Version == "" {
		t.Fatal("empty version")
	}
}

func TestWriteVersionFormat(t *testing.T) {
	var sb strings.Builder
	WriteVersion(&sb, "hummingbird")
	out := sb.String()
	if !strings.HasPrefix(out, "hummingbird ") {
		t.Fatalf("version line %q lacks binary name", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("version line %q not newline-terminated", out)
	}
	if !strings.Contains(out, "go") {
		t.Fatalf("version line %q lacks toolchain version", out)
	}
}

func TestWriteJSONDecodes(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var info Info
	if err := json.Unmarshal([]byte(sb.String()), &info); err != nil {
		t.Fatalf("buildinfo JSON: %v", err)
	}
	if info.GoVersion == "" {
		t.Fatal("decoded info lacks Go version")
	}
}
