package loadgen

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistIndexMonotone(t *testing.T) {
	prev := 0
	for ns := int64(0); ns < int64(10*time.Second); ns = ns*5/4 + 1 {
		idx := histIndex(ns)
		if idx < prev {
			t.Fatalf("index not monotone at %d: %d < %d", ns, idx, prev)
		}
		if idx >= histBuckets {
			t.Fatalf("index %d out of range at %d", idx, ns)
		}
		prev = idx
	}
	if histIndex(-5) != 0 {
		t.Fatalf("negative values must land in bucket 0")
	}
	if histIndex(1<<62) != histBuckets-1 {
		t.Fatalf("huge values must saturate into the last bucket")
	}
}

func TestHistBoundCoversIndex(t *testing.T) {
	// Every value must be at or below the upper bound of its bucket, and
	// bounds must strictly increase.
	for ns := int64(1); ns < int64(time.Minute); ns = ns*3/2 + 7 {
		idx := histIndex(ns)
		if b := histBound(idx); ns > b {
			t.Fatalf("value %d above its bucket bound %d (bucket %d)", ns, b, idx)
		}
	}
	prev := int64(0)
	for i := 0; i < histBuckets; i++ {
		b := histBound(i)
		if b <= prev {
			t.Fatalf("bound %d at bucket %d not increasing (prev %d)", b, i, prev)
		}
		prev = b
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Uniform latencies 1..100ms: quantile estimates must land within the
	// histogram's ~6% relative resolution (plus one bucket's slack).
	var h hist
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.record(time.Duration(1+rnd.Int63n(100)) * time.Millisecond)
	}
	s := h.stats()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"p50", s.P50, 50e6},
		{"p90", s.P90, 90e6},
		{"p99", s.P99, 99e6},
		{"p999", s.P999, 100e6},
	}
	for _, c := range checks {
		ratio := float64(c.got) / float64(c.want)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("%s = %d, want within 10%% of %d", c.name, c.got, c.want)
		}
	}
	if s.Count != 100_000 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Max > int64(100*time.Millisecond) || s.Max < int64(99*time.Millisecond) {
		t.Fatalf("max %d", s.Max)
	}
	// The p999 estimate can never exceed the recorded maximum.
	if s.P999 > s.Max {
		t.Fatalf("p999 %d above max %d", s.P999, s.Max)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h hist
	s := h.stats()
	if s.P50 != 0 || s.P999 != 0 || s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty histogram stats: %+v", s)
	}
}

func TestMixTable(t *testing.T) {
	classes, cum := mixTable(map[string]float64{
		OpEditDelay: 3, OpReport: 1, OpEditTopo: 0,
	})
	if len(classes) != 2 {
		t.Fatalf("zero-weight class kept: %v", classes)
	}
	// Deterministic class order (sorted), cumulative weights normalised.
	if classes[0] != OpEditDelay || classes[1] != OpReport {
		t.Fatalf("classes %v", classes)
	}
	if cum[1] < 0.999 || cum[1] > 1.001 {
		t.Fatalf("cum %v", cum)
	}
	if got := pickClass(classes, cum, 0.5); got != OpEditDelay {
		t.Fatalf("0.5 -> %s", got)
	}
	if got := pickClass(classes, cum, 0.9); got != OpReport {
		t.Fatalf("0.9 -> %s", got)
	}
}

func TestPoissonMeanInterval(t *testing.T) {
	// The Poisson schedule's mean inter-arrival must approximate 1/rate.
	rnd := rand.New(rand.NewSource(42))
	rate := 1000.0
	interval := float64(time.Second) / rate
	var gaps []float64
	for i := 0; i < 20_000; i++ {
		gaps = append(gaps, rnd.ExpFloat64()*interval)
	}
	m := mean(gaps)
	if m < interval*0.95 || m > interval*1.05 {
		t.Fatalf("poisson mean gap %.0fns, want ~%.0fns", m, interval)
	}
}
