// Log-linear latency histogram for the load generator. The telemetry
// package's fixed power-of-two buckets are fine for server-side
// monitoring, but a load report quoting p99.9 needs finer resolution:
// this histogram subdivides every power-of-two range into 16 linear
// sub-buckets (HDR-histogram style), bounding the quantile error at
// ~6% while keeping Record lock-free and allocation-free.

package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits sub-buckets per power-of-two range.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histMinShift: values at or below 2^histMinShift ns (~1µs) share the
	// first range — nothing over HTTP resolves faster.
	histMinShift = 10
	// histRanges power-of-two ranges: top bound 2^(10+26) ns ≈ 67s;
	// anything slower saturates into the last bucket.
	histRanges  = 26
	histBuckets = histRanges * histSub
)

// hist is a concurrent log-linear histogram over nanosecond values.
type hist struct {
	count   atomic.Int64
	total   atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histIndex maps a nanosecond value to its bucket.
func histIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	exp := bits.Len64(uint64(ns)) // position of the top set bit, 1-based
	if exp <= histMinShift+histSubBits {
		// Whole first range is linear: 2^(minShift+subBits) ns across
		// histSub buckets of 2^minShift each.
		idx := int(ns >> histMinShift)
		if idx >= histSub {
			idx = histSub - 1
		}
		return idx
	}
	rng := exp - (histMinShift + histSubBits) // 1-based range above the first
	if rng >= histRanges {
		return histBuckets - 1
	}
	// Within range rng, the value spans [2^(exp-1), 2^exp); the top
	// subBits bits below the leading bit select the linear sub-bucket.
	sub := int(ns>>(exp-1-histSubBits)) & (histSub - 1)
	return rng*histSub + sub
}

// histBound returns the inclusive upper bound of bucket i in
// nanoseconds.
func histBound(i int) int64 {
	rng := i / histSub
	sub := int64(i%histSub) + 1
	if rng == 0 {
		return sub << histMinShift
	}
	base := int64(1) << (histMinShift + histSubBits + rng - 1)
	return base + sub*(base>>histSubBits)
}

// record adds one observation.
func (h *hist) record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.total.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[histIndex(ns)].Add(1)
}

// snapshot copies the bucket counts.
func (h *hist) snapshot() (counts [histBuckets]int64, count, total, max int64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts, h.count.Load(), h.total.Load(), h.max.Load()
}

// quantile estimates the q-quantile in nanoseconds from a snapshot by
// stepping buckets to the target rank; the true maximum caps the
// estimate so a single slow outlier cannot be reported above itself.
func quantile(counts [histBuckets]int64, count, max int64, q float64) int64 {
	if count <= 0 {
		return 0
	}
	rank := int64(float64(count)*q + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			b := histBound(i)
			if b > max {
				b = max
			}
			return b
		}
	}
	return max
}

// stats derives the report numbers from one histogram.
type histStats struct {
	Count, Total, Max   int64
	Mean                int64
	P50, P90, P99, P999 int64
}

func (h *hist) stats() histStats {
	counts, count, total, max := h.snapshot()
	s := histStats{Count: count, Total: total, Max: max}
	if count > 0 {
		s.Mean = total / count
	}
	s.P50 = quantile(counts, count, max, 0.50)
	s.P90 = quantile(counts, count, max, 0.90)
	s.P99 = quantile(counts, count, max, 0.99)
	s.P999 = quantile(counts, count, max, 0.999)
	return s
}
