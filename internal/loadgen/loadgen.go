// Package loadgen is an open-loop load generator for the hummingbirdd
// session protocol. Open-loop means arrivals are scheduled by a clock,
// not by the completion of earlier requests: every operation has a
// scheduled intent time drawn from a constant-rate or Poisson arrival
// process, it is dispatched the moment that time arrives whether or not
// earlier operations have finished, and its latency is measured from the
// intent time. A server stall therefore shows up as the full queueing
// delay suffered by every operation scheduled during the stall — the
// coordinated-omission-safe measurement a closed-loop (request, wait,
// request) harness structurally cannot make. A second histogram per
// class records service time from request send, so latency minus service
// reads directly as client-side queueing.
//
// The generator holds a pool of concurrent sessions open against the
// daemon and schedules a weighted mix of operation classes over them:
//
//	open         session ramp-up (POST /v1/sessions)
//	edit_delay   delay-only edit batch (adjust)
//	edit_topo    topology edit batch (add + remove a buffer → full rebuild)
//	whatif       speculative edit, read the verdict, revert (3 requests)
//	report       full analysis report read
//	park_resume  close (park) and re-open the same design
//
// A background poller watches /readyz: when the replica reports the
// draining state, the generator stops scheduling session-creating
// operations against it (ramp for a fleet drain story), while continuing
// the in-flight mix. Before and after the run it scrapes /metrics.json
// so client-observed latency can be correlated with server-side signals
// (fsync lag, inflight, GC pause, compile-cache hits). When trace
// tagging is on, every request carries a generator-chosen X-Trace-Id;
// after the run the slowest operation is replayed under its tag and the
// matching span tree is fetched from the session's /trace/last.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hummingbird/internal/benchfmt"
	"hummingbird/internal/telemetry"
)

// Operation class names (the opClass column of benchfmt.LoadRow).
const (
	OpOpen       = "open"
	OpEditDelay  = "edit_delay"
	OpEditTopo   = "edit_topo"
	OpWhatIf     = "whatif"
	OpReport     = "report"
	OpParkResume = "park_resume"
)

// Arrival processes.
const (
	ArrivalsConst   = "const"
	ArrivalsPoisson = "poisson"
)

// DefaultMix is the steady-state operation mix: mostly cheap delay
// edits and report reads, a trickle of expensive full-rebuild topology
// edits and park/resume cycles — the shape of an interactive
// analysis-redesign loop.
func DefaultMix() map[string]float64 {
	return map[string]float64{
		OpEditDelay:  0.55,
		OpReport:     0.20,
		OpWhatIf:     0.15,
		OpEditTopo:   0.05,
		OpParkResume: 0.05,
	}
}

// ResizePair names an instance and the cell to flip it to and back —
// the payload of a delay-only resize exercise (unused by the default
// mix, available to custom mixes via edit_delay instance lists).
type ResizePair struct {
	Inst, From, To string
}

// Config parameterises one load run.
type Config struct {
	// BaseURL of the target daemon, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// Client defaults to an http.Client with a 30s timeout and raised
	// per-host connection limits.
	Client *http.Client
	// Rate is the total scheduled arrival rate in ops/sec.
	Rate float64
	// Arrivals is ArrivalsConst or ArrivalsPoisson.
	Arrivals string
	// Duration of the steady-state phase (after session ramp).
	Duration time.Duration
	// Sessions is the number of concurrent sessions to hold open.
	Sessions int
	// MaxConcurrent bounds in-flight operations (the worker pool). The
	// pool must be generous: a bounded pool that saturates re-introduces
	// coordination; saturation is therefore counted in Dropped. 0 = 512.
	MaxConcurrent int
	// QueueDepth bounds the dispatch backlog. 0 = 65536.
	QueueDepth int
	// Workload labels the rows (e.g. "sm1f").
	Workload string
	// Design is the netlist text sessions are opened with.
	Design string
	// EditInsts are instance names safe for delay adjustments.
	EditInsts []string
	// TopoNets are net names a temporary buffer may be hung off for
	// topology edits.
	TopoNets []string
	// Mix maps op class → weight; DefaultMix when nil.
	Mix map[string]float64
	// Seed drives every random choice; same seed, same schedule.
	Seed int64
	// TraceTag, when non-empty, prefixes an X-Trace-Id sent with every
	// request, and enables the slowest-op replay after the run.
	TraceTag string
	// Log receives progress lines; nil discards.
	Log io.Writer
	// DrainPoll is the /readyz polling interval. 0 = 250ms.
	DrainPoll time.Duration
	// ReadyzURL is the full URL the drain poller watches. It defaults to
	// BaseURL+"/readyz", which is right for a single replica; when
	// driving a fleet router, point it at one member's /readyz (or the
	// router's aggregate) so the drain ramp reacts to the replica being
	// rolled rather than to fleet-wide state.
	ReadyzURL string
	// Replicas labels the emitted bench rows with the fleet size behind
	// BaseURL (0 = standalone daemon, omitted from the row).
	Replicas int
}

func (c *Config) defaults() {
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 256
		tr.MaxConnsPerHost = 0
		c.Client = &http.Client{Timeout: 30 * time.Second, Transport: tr}
	}
	if c.Arrivals == "" {
		c.Arrivals = ArrivalsConst
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 512
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 65536
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	if c.DrainPoll <= 0 {
		c.DrainPoll = 250 * time.Millisecond
	}
	if c.ReadyzURL == "" {
		c.ReadyzURL = c.BaseURL + "/readyz"
	}
}

// ClassResult is one op class's accumulated outcome.
type ClassResult struct {
	Scheduled    int64
	Completed    int64
	Dropped      int64 // harness overload: dispatch queue or worker pool full
	SkippedDrain int64 // not scheduled because the replica was draining
	Shed         int64 // 429s
	Failed       int64 // 5xx + transport errors
	Errors       map[string]int64
	Latency      histStats // from scheduled intent (coordinated-omission safe)
	Service      histStats // from request send
}

// Result is one load run's outcome.
type Result struct {
	Workload string
	Arrivals string
	Rate     float64
	Sessions int
	Replicas int           // fleet size behind the target (0 = standalone)
	Duration time.Duration // measured steady-state window
	Classes  map[string]*ClassResult
	// ServerBefore/ServerAfter are the daemon's telemetry snapshots
	// scraped around the run (nil when /metrics.json was unreachable).
	ServerBefore, ServerAfter *telemetry.Metrics
	// DrainObserved reports whether /readyz ever answered "draining".
	DrainObserved bool
	// Slowest op across all classes, for the trace walkthrough.
	SlowestClass   string
	SlowestLatency time.Duration
	SlowestTraceID string
	// SlowestTrace is the span tree fetched from /trace/last after
	// replaying the slowest op under its trace id (TraceTag runs only).
	SlowestTrace json.RawMessage
}

// BenchRows converts the result into benchfmt load rows, one per op
// class that scheduled anything, sorted by class name.
func (r *Result) BenchRows() []benchfmt.LoadRow {
	names := make([]string, 0, len(r.Classes))
	for name, c := range r.Classes {
		if c.Scheduled == 0 && c.Completed == 0 {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]benchfmt.LoadRow, 0, len(names))
	secs := r.Duration.Seconds()
	for _, name := range names {
		c := r.Classes[name]
		row := benchfmt.LoadRow{
			Workload:   r.Workload,
			OpClass:    name,
			Arrivals:   r.Arrivals,
			Sessions:   r.Sessions,
			Replicas:   r.Replicas,
			DurationNs: r.Duration.Nanoseconds(),
			Scheduled:  c.Scheduled,
			Ops:        c.Completed,
			Shed:       c.Shed,
			Failed:     c.Failed,
			MeanNs:     c.Latency.Mean,
			P50Ns:      c.Latency.P50,
			P90Ns:      c.Latency.P90,
			P99Ns:      c.Latency.P99,
			P999Ns:     c.Latency.P999,
			MaxNs:      c.Latency.Max,

			ServiceP50Ns: c.Service.P50,
			ServiceP99Ns: c.Service.P99,
		}
		if len(c.Errors) > 0 {
			row.Errors = make(map[string]int64, len(c.Errors))
			for k, v := range c.Errors {
				row.Errors[k] = v
			}
		}
		if secs > 0 {
			row.Throughput = float64(c.Completed) / secs
			row.TargetRate = float64(c.Scheduled) / secs
		}
		rows = append(rows, row)
	}
	return rows
}

// replayable is the single request re-issued for the slow-trace
// walkthrough.
type replayable struct {
	method, path string
	body         []byte
}

// classStats is the live accumulator behind a ClassResult.
type classStats struct {
	scheduled    atomic.Int64
	completed    atomic.Int64
	dropped      atomic.Int64
	skippedDrain atomic.Int64
	shed         atomic.Int64
	failed       atomic.Int64

	errMu  sync.Mutex
	errors map[string]int64

	latency hist
	service hist

	slowMu      sync.Mutex
	slowLatency time.Duration
	slowTraceID string
	slowSession string
	slowReq     replayable
}

func (c *classStats) countError(key string) {
	c.errMu.Lock()
	if c.errors == nil {
		c.errors = make(map[string]int64)
	}
	c.errors[key]++
	c.errMu.Unlock()
}

func (c *classStats) noteSlow(lat time.Duration, traceID, session string, req replayable) {
	c.slowMu.Lock()
	if lat > c.slowLatency {
		c.slowLatency, c.slowTraceID, c.slowSession, c.slowReq = lat, traceID, session, req
	}
	c.slowMu.Unlock()
}

func (c *classStats) result() *ClassResult {
	r := &ClassResult{
		Scheduled:    c.scheduled.Load(),
		Completed:    c.completed.Load(),
		Dropped:      c.dropped.Load(),
		SkippedDrain: c.skippedDrain.Load(),
		Shed:         c.shed.Load(),
		Failed:       c.failed.Load(),
		Latency:      c.latency.stats(),
		Service:      c.service.stats(),
	}
	c.errMu.Lock()
	if len(c.errors) > 0 {
		r.Errors = make(map[string]int64, len(c.errors))
		for k, v := range c.errors {
			r.Errors[k] = v
		}
	}
	c.errMu.Unlock()
	return r
}

// scheduledOp is one dispatched intent.
type scheduledOp struct {
	class  string
	intent time.Time
	seed   int64
}

// runner holds one run's live state.
type runner struct {
	cfg      Config
	classes  map[string]*classStats
	draining atomic.Bool
	drainHit atomic.Bool
	traceSeq atomic.Int64

	poolMu sync.Mutex
	pool   []string // open session ids
}

// Run executes one load run. The context cancels the whole run
// (in-flight requests included).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be positive")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("loadgen: Sessions must be positive")
	}
	if cfg.Design == "" {
		return nil, fmt.Errorf("loadgen: Design required")
	}
	switch cfg.Arrivals {
	case ArrivalsConst, ArrivalsPoisson:
	default:
		return nil, fmt.Errorf("loadgen: unknown arrivals %q", cfg.Arrivals)
	}
	classNames := []string{OpOpen, OpEditDelay, OpEditTopo, OpWhatIf, OpReport, OpParkResume}
	r := &runner{cfg: cfg, classes: make(map[string]*classStats, len(classNames))}
	for _, n := range classNames {
		r.classes[n] = &classStats{}
	}
	for n := range cfg.Mix {
		if _, ok := r.classes[n]; !ok {
			return nil, fmt.Errorf("loadgen: unknown op class %q in mix", n)
		}
	}

	before := r.scrapeMetrics(ctx)

	// Drain poller: watches /readyz for the draining state for the whole
	// run (ramp included).
	pollCtx, stopPoll := context.WithCancel(ctx)
	defer stopPoll()
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		r.pollReadyz(pollCtx)
	}()

	if err := r.ramp(ctx); err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Log, "loadgen: %d sessions open, starting %s %s arrivals at %.0f ops/s for %v\n",
		len(r.pool), cfg.Workload, cfg.Arrivals, cfg.Rate, cfg.Duration)

	// Workers pull dispatched intents; the pool size bounds in-flight
	// operations without ever blocking the scheduler (a full queue counts
	// as dropped instead — harness overload must be visible, not absorbed
	// into the latency numbers).
	dispatch := make(chan scheduledOp, cfg.QueueDepth)
	var workWG sync.WaitGroup
	for i := 0; i < cfg.MaxConcurrent; i++ {
		workWG.Add(1)
		go func(worker int) {
			defer workWG.Done()
			rnd := rand.New(rand.NewSource(cfg.Seed ^ int64(worker)<<17 ^ 0x5eed))
			for op := range dispatch {
				r.execute(ctx, rnd, op)
			}
		}(i)
	}

	start := time.Now()
	r.schedule(ctx, start, dispatch)
	close(dispatch)
	workWG.Wait()
	elapsed := time.Since(start)
	stopPoll()
	pollWG.Wait()

	after := r.scrapeMetrics(ctx)

	res := &Result{
		Workload:      cfg.Workload,
		Arrivals:      cfg.Arrivals,
		Rate:          cfg.Rate,
		Sessions:      cfg.Sessions,
		Replicas:      cfg.Replicas,
		Duration:      elapsed,
		Classes:       make(map[string]*ClassResult, len(r.classes)),
		ServerBefore:  before,
		ServerAfter:   after,
		DrainObserved: r.drainHit.Load(),
	}
	for name, c := range r.classes {
		res.Classes[name] = c.result()
	}
	r.attachSlowest(ctx, res)
	r.closeAll(ctx)
	return res, ctx.Err()
}

// schedule runs the arrival process until the duration elapses,
// dispatching one intent per arrival. Behind schedule it dispatches
// immediately without sleeping — the backlog is charged to the
// operations, never forgiven.
func (r *runner) schedule(ctx context.Context, start time.Time, dispatch chan<- scheduledOp) {
	rnd := rand.New(rand.NewSource(r.cfg.Seed))
	classes, cum := mixTable(r.cfg.Mix)
	interval := float64(time.Second) / r.cfg.Rate
	end := start.Add(r.cfg.Duration)
	next := start
	for {
		switch r.cfg.Arrivals {
		case ArrivalsConst:
			next = next.Add(time.Duration(interval))
		case ArrivalsPoisson:
			next = next.Add(time.Duration(rnd.ExpFloat64() * interval))
		}
		if next.After(end) {
			return
		}
		if d := time.Until(next); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
		} else if ctx.Err() != nil {
			return
		}
		class := pickClass(classes, cum, rnd.Float64())
		cs := r.classes[class]
		if r.draining.Load() && (class == OpOpen || class == OpParkResume) {
			// The replica asked to be drained: do not create sessions on
			// it. The rest of the mix keeps flowing so in-progress work
			// completes.
			cs.skippedDrain.Add(1)
			continue
		}
		cs.scheduled.Add(1)
		select {
		case dispatch <- scheduledOp{class: class, intent: next, seed: rnd.Int63()}:
		default:
			cs.dropped.Add(1)
		}
	}
}

// mixTable flattens the mix into a cumulative-weight table.
func mixTable(mix map[string]float64) (classes []string, cum []float64) {
	classes = make([]string, 0, len(mix))
	for c, w := range mix {
		if w > 0 {
			classes = append(classes, c)
		}
	}
	sort.Strings(classes)
	total := 0.0
	for _, c := range classes {
		total += mix[c]
	}
	cum = make([]float64, len(classes))
	acc := 0.0
	for i, c := range classes {
		acc += mix[c] / total
		cum[i] = acc
	}
	return classes, cum
}

func pickClass(classes []string, cum []float64, u float64) string {
	for i, c := range cum {
		if u <= c {
			return classes[i]
		}
	}
	return classes[len(classes)-1]
}

// ramp opens the session pool with bounded parallelism, measured into
// the "open" class (intent = the moment the open was scheduled, so a
// daemon that compiles slowly under a thundering herd is charged for
// the queueing it causes).
func (r *runner) ramp(ctx context.Context) error {
	cs := r.classes[OpOpen]
	par := 32
	if par > r.cfg.Sessions {
		par = r.cfg.Sessions
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for i := 0; i < r.cfg.Sessions; i++ {
		if ctx.Err() != nil {
			break
		}
		if r.draining.Load() {
			cs.skippedDrain.Add(1)
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		intent := time.Now()
		cs.scheduled.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := r.openSession(ctx, cs, intent); err != nil && firstErr.Load() == nil {
				firstErr.Store(err)
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		r.poolMu.Lock()
		n := len(r.pool)
		r.poolMu.Unlock()
		if n == 0 {
			return fmt.Errorf("loadgen: session ramp failed: %w", err)
		}
		fmt.Fprintf(r.cfg.Log, "loadgen: ramp partially failed (%d/%d sessions): %v\n", n, r.cfg.Sessions, err)
	}
	return nil
}

// openSession opens one session and adds it to the pool.
func (r *runner) openSession(ctx context.Context, cs *classStats, intent time.Time) (string, error) {
	body, _ := json.Marshal(map[string]any{"design": r.cfg.Design})
	req := replayable{method: http.MethodPost, path: "/v1/sessions", body: body}
	status, resp, err := r.do(ctx, cs, intent, "", req)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", fmt.Errorf("open: status %d", status)
	}
	id, _ := resp["session"].(string)
	if id == "" {
		return "", fmt.Errorf("open: no session id")
	}
	r.poolMu.Lock()
	r.pool = append(r.pool, id)
	r.poolMu.Unlock()
	return id, nil
}

// takeSession removes a random session from the pool (park_resume);
// pickSession reads one without removing it.
func (r *runner) takeSession(rnd *rand.Rand) (string, bool) {
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if len(r.pool) == 0 {
		return "", false
	}
	i := rnd.Intn(len(r.pool))
	id := r.pool[i]
	r.pool[i] = r.pool[len(r.pool)-1]
	r.pool = r.pool[:len(r.pool)-1]
	return id, true
}

func (r *runner) pickSession(rnd *rand.Rand) (string, bool) {
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if len(r.pool) == 0 {
		return "", false
	}
	return r.pool[rnd.Intn(len(r.pool))], true
}

func (r *runner) inPool(id string) bool {
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	for _, s := range r.pool {
		if s == id {
			return true
		}
	}
	return false
}

func (r *runner) anySession() (string, bool) {
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if len(r.pool) == 0 {
		return "", false
	}
	return r.pool[0], true
}

// execute performs one scheduled operation.
func (r *runner) execute(ctx context.Context, rnd *rand.Rand, op scheduledOp) {
	cs := r.classes[op.class]
	switch op.class {
	case OpOpen:
		r.openSession(ctx, cs, op.intent)
	case OpEditDelay:
		sid, ok := r.pickSession(rnd)
		if !ok {
			cs.countError("no_session")
			return
		}
		sign := "-"
		if rnd.Intn(2) == 0 {
			sign = ""
		}
		inst := r.cfg.EditInsts[rnd.Intn(len(r.cfg.EditInsts))]
		body, _ := json.Marshal(map[string]any{"edits": []map[string]any{
			{"op": "adjust", "inst": inst, "delta": sign + "100ps"},
		}})
		r.doOp(ctx, cs, op.intent, sid, replayable{
			method: http.MethodPost, path: "/v1/sessions/" + sid + "/edits", body: body,
		})
	case OpEditTopo:
		sid, ok := r.pickSession(rnd)
		if !ok {
			cs.countError("no_session")
			return
		}
		net := r.cfg.TopoNets[rnd.Intn(len(r.cfg.TopoNets))]
		tmp := fmt.Sprintf("lg_tmp_%d", op.seed&0xffffff)
		body, _ := json.Marshal(map[string]any{"edits": []map[string]any{
			{"op": "add", "inst": tmp, "ref": "BUF_X1", "conns": map[string]string{"A": net, "Y": tmp + "_y"}},
			{"op": "remove", "inst": tmp},
		}})
		r.doOp(ctx, cs, op.intent, sid, replayable{
			method: http.MethodPost, path: "/v1/sessions/" + sid + "/edits", body: body,
		})
	case OpWhatIf:
		r.executeWhatIf(ctx, rnd, cs, op)
	case OpReport:
		sid, ok := r.pickSession(rnd)
		if !ok {
			cs.countError("no_session")
			return
		}
		r.doOp(ctx, cs, op.intent, sid, replayable{
			method: http.MethodGet, path: "/v1/sessions/" + sid + "/report",
		})
	case OpParkResume:
		r.executeParkResume(ctx, rnd, cs, op)
	}
}

// executeWhatIf models Algorithm 3's speculative probe: apply a
// candidate slowdown, read the verdict, revert. One operation, three
// requests; the latency covers the whole probe.
func (r *runner) executeWhatIf(ctx context.Context, rnd *rand.Rand, cs *classStats, op scheduledOp) {
	sid, ok := r.pickSession(rnd)
	if !ok {
		cs.countError("no_session")
		return
	}
	inst := r.cfg.EditInsts[rnd.Intn(len(r.cfg.EditInsts))]
	apply, _ := json.Marshal(map[string]any{"edits": []map[string]any{
		{"op": "adjust", "inst": inst, "delta": "500ps"},
	}})
	revert, _ := json.Marshal(map[string]any{"edits": []map[string]any{
		{"op": "adjust", "inst": inst, "delta": "-500ps"},
	}})
	editPath := "/v1/sessions/" + sid + "/edits"
	traceID := r.nextTraceID()
	start := time.Now()
	status, _, err := r.doRaw(ctx, traceID, replayable{method: http.MethodPost, path: editPath, body: apply})
	ok1 := err == nil && status < 400
	if ok1 {
		// Only a successfully applied probe is read back and reverted; an
		// errored apply (e.g. the session was parked mid-probe) ends the op.
		if st, _, e := r.doRaw(ctx, "", replayable{method: http.MethodGet, path: "/v1/sessions/" + sid}); e == nil && st >= 400 {
			status = st
		}
		if st, _, e := r.doRaw(ctx, "", replayable{method: http.MethodPost, path: editPath, body: revert}); e == nil && st >= 400 {
			status = st
		} else if e != nil {
			err = e
		}
	}
	r.finishOp(cs, op.intent, start, status, err, traceID, sid,
		replayable{method: http.MethodPost, path: editPath, body: apply})
}

// executeParkResume closes a session (parking its engine) and re-opens
// the same design, which should hit the parked-state LRU or the shared
// compile cache. One operation, two requests.
func (r *runner) executeParkResume(ctx context.Context, rnd *rand.Rand, cs *classStats, op scheduledOp) {
	sid, ok := r.takeSession(rnd)
	if !ok {
		cs.countError("no_session")
		return
	}
	traceID := r.nextTraceID()
	start := time.Now()
	status, _, err := r.doRaw(ctx, traceID, replayable{method: http.MethodDelete, path: "/v1/sessions/" + sid})
	openReq := replayable{method: http.MethodPost, path: "/v1/sessions"}
	openReq.body, _ = json.Marshal(map[string]any{"design": r.cfg.Design})
	if err == nil && status < 400 {
		var resp map[string]any
		st, resp, e := r.doRaw(ctx, "", openReq)
		if e != nil {
			err = e
		} else {
			status = st
			if id, _ := resp["session"].(string); id != "" {
				r.poolMu.Lock()
				r.pool = append(r.pool, id)
				r.poolMu.Unlock()
			}
		}
	}
	r.finishOp(cs, op.intent, start, status, err, traceID, "", openReq)
}

// doOp runs a single-request operation end to end.
func (r *runner) doOp(ctx context.Context, cs *classStats, intent time.Time, sid string, req replayable) {
	traceID := r.nextTraceID()
	start := time.Now()
	status, _, err := r.doRaw(ctx, traceID, req)
	r.finishOp(cs, intent, start, status, err, traceID, sid, req)
}

// finishOp records one completed operation into the class accumulators.
func (r *runner) finishOp(cs *classStats, intent, sent time.Time, status int, err error, traceID, sid string, req replayable) {
	now := time.Now()
	lat := now.Sub(intent)
	cs.completed.Add(1)
	cs.latency.record(lat)
	cs.service.record(now.Sub(sent))
	switch {
	case err != nil:
		cs.failed.Add(1)
		cs.countError("transport")
	case status >= 400:
		cs.countError(strconv.Itoa(status))
		if status == http.StatusTooManyRequests {
			cs.shed.Add(1)
		}
		if status >= 500 {
			cs.failed.Add(1)
		}
	}
	if err == nil && status < 400 {
		cs.noteSlow(lat, traceID, sid, req)
	}
}

// doRaw issues one HTTP request, returning the status and decoded JSON
// body (nil when the body is not a JSON object).
func (r *runner) doRaw(ctx context.Context, traceID string, req replayable) (int, map[string]any, error) {
	var rd io.Reader
	if req.body != nil {
		rd = bytes.NewReader(req.body)
	}
	hreq, err := http.NewRequestWithContext(ctx, req.method, r.cfg.BaseURL+req.path, rd)
	if err != nil {
		return 0, nil, err
	}
	if req.body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if traceID != "" {
		hreq.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := r.cfg.Client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	dec := json.NewDecoder(io.LimitReader(resp.Body, 8<<20))
	if err := dec.Decode(&m); err != nil {
		m = nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, m, nil
}

// do wraps doRaw with per-op accounting for ramp opens.
func (r *runner) do(ctx context.Context, cs *classStats, intent time.Time, sid string, req replayable) (int, map[string]any, error) {
	traceID := r.nextTraceID()
	start := time.Now()
	status, m, err := r.doRaw(ctx, traceID, req)
	r.finishOp(cs, intent, start, status, err, traceID, sid, req)
	return status, m, err
}

func (r *runner) nextTraceID() string {
	if r.cfg.TraceTag == "" {
		return ""
	}
	return fmt.Sprintf("%s-%d", r.cfg.TraceTag, r.traceSeq.Add(1))
}

// pollReadyz watches /readyz for the draining state.
func (r *runner) pollReadyz(ctx context.Context) {
	t := time.NewTicker(r.cfg.DrainPoll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.ReadyzURL, nil)
		if err != nil {
			continue
		}
		resp, err := r.cfg.Client.Do(req)
		if err != nil {
			continue
		}
		var m struct {
			State string `json:"state"`
		}
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&m)
		resp.Body.Close()
		draining := m.State == "draining"
		if draining {
			r.drainHit.Store(true)
		}
		r.draining.Store(draining)
	}
}

// scrapeMetrics fetches the daemon's JSON telemetry snapshot;
// best-effort (nil on any failure).
func (r *runner) scrapeMetrics(ctx context.Context) *telemetry.Metrics {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/metrics.json", nil)
	if err != nil {
		return nil
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var m telemetry.Metrics
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&m); err != nil {
		return nil
	}
	return &m
}

// ServerDelta correlates the run with server-side signals: for every
// counter it returns after-before, and for every gauge the after value,
// keyed by instrument name. Empty when either scrape failed.
func (r *Result) ServerDelta() map[string]float64 {
	if r.ServerBefore == nil || r.ServerAfter == nil {
		return nil
	}
	d := make(map[string]float64)
	for name, after := range r.ServerAfter.Counters {
		d[name] = float64(after - r.ServerBefore.Counters[name])
	}
	for name, after := range r.ServerAfter.Gauges {
		d[name] = after
	}
	return d
}

// attachSlowest finds the slowest successful operation across classes
// and, when trace tagging is on, replays it under its trace id and
// fetches the span tree from the session's /trace/last.
func (r *runner) attachSlowest(ctx context.Context, res *Result) {
	var worst *classStats
	worstClass := ""
	for name, cs := range r.classes {
		cs.slowMu.Lock()
		lat := cs.slowLatency
		cs.slowMu.Unlock()
		if worst == nil || lat > res.SlowestLatency {
			if lat > 0 {
				worst, worstClass, res.SlowestLatency = cs, name, lat
			}
		}
	}
	if worst == nil {
		return
	}
	worst.slowMu.Lock()
	res.SlowestClass = worstClass
	res.SlowestTraceID = worst.slowTraceID
	sid, req := worst.slowSession, worst.slowReq
	worst.slowMu.Unlock()
	if r.cfg.TraceTag == "" || req.path == "" {
		return
	}
	// The slowest op's session may have been parked by a later
	// park_resume; substitute a session that is still in the pool.
	if sid != "" && !r.inPool(sid) {
		live, ok := r.anySession()
		if !ok {
			return
		}
		req.path = strings.ReplaceAll(req.path, sid, live)
		sid = live
	}
	// Replay under a derived id, then read the session's last trace; the
	// fetch only counts when the daemon adopted the inbound id.
	replayID := res.SlowestTraceID + "-replay"
	status, resp, err := r.doRaw(ctx, replayID, req)
	if err != nil || status >= 400 {
		return
	}
	if sid == "" {
		// A park_resume replay opens a fresh session; its id arrives in
		// the reply. Pool it so closeAll cleans it up.
		id, _ := resp["session"].(string)
		if id == "" {
			return
		}
		r.poolMu.Lock()
		r.pool = append(r.pool, id)
		r.poolMu.Unlock()
		sid = id
	}
	st, body, err := r.fetchTrace(ctx, sid)
	if err != nil || st != http.StatusOK {
		return
	}
	var tr struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &tr) != nil || tr.ID != replayID {
		return
	}
	res.SlowestTrace = body
}

func (r *runner) fetchTrace(ctx context.Context, sid string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/sessions/"+sid+"/trace/last", nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	return resp.StatusCode, b, err
}

// closeAll closes every pooled session (best-effort, bounded time).
func (r *runner) closeAll(ctx context.Context) {
	r.poolMu.Lock()
	ids := r.pool
	r.pool = nil
	r.poolMu.Unlock()
	sem := make(chan struct{}, 32)
	var wg sync.WaitGroup
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			defer func() { <-sem }()
			r.doRaw(ctx, "", replayable{method: http.MethodDelete, path: "/v1/sessions/" + id})
		}(id)
	}
	wg.Wait()
}

// OverallErrorRate is the failed fraction across all classes (CI gate).
func (r *Result) OverallErrorRate() float64 {
	var ops, failed int64
	for _, c := range r.Classes {
		ops += c.Completed
		failed += c.Failed
	}
	if ops == 0 {
		return 0
	}
	return float64(failed) / float64(ops)
}

// Failed5xx sums 5xx + transport failures across classes.
func (r *Result) Failed5xx() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.Failed
	}
	return n
}

// WorstP99 is the maximum p99 latency across classes.
func (r *Result) WorstP99() time.Duration {
	var worst int64
	for _, c := range r.Classes {
		if c.Latency.P99 > worst {
			worst = c.Latency.P99
		}
	}
	return time.Duration(worst)
}

// WriteText renders a human-readable summary table.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "workload %s: %s arrivals at %.0f ops/s for %v, %d sessions\n",
		r.Workload, r.Arrivals, r.Rate, r.Duration.Round(time.Millisecond), r.Sessions)
	if r.DrainObserved {
		fmt.Fprintln(w, "NOTE: replica reported draining during the run; session-creating ops were withheld")
	}
	names := make([]string, 0, len(r.Classes))
	for n, c := range r.Classes {
		if c.Scheduled > 0 || c.Completed > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-12s %9s %9s %6s %6s %10s %10s %10s %10s %10s %10s\n",
		"class", "sched", "done", "shed", "fail", "mean", "p50", "p90", "p99", "p99.9", "max")
	for _, n := range names {
		c := r.Classes[n]
		fmt.Fprintf(w, "%-12s %9d %9d %6d %6d %10s %10s %10s %10s %10s %10s\n",
			n, c.Scheduled, c.Completed, c.Shed, c.Failed,
			fmtLat(c.Latency.Mean), fmtLat(c.Latency.P50), fmtLat(c.Latency.P90),
			fmtLat(c.Latency.P99), fmtLat(c.Latency.P999), fmtLat(c.Latency.Max))
		if c.Dropped > 0 || c.SkippedDrain > 0 {
			fmt.Fprintf(w, "%-12s   dropped %d (harness overload), drain-skipped %d\n", "", c.Dropped, c.SkippedDrain)
		}
	}
	if delta := r.ServerDelta(); len(delta) > 0 {
		keys := []string{
			"server.requests_shed", "server.panics_recovered",
			"hummingbirdd.cache_hits", "hummingbirdd.cache_misses",
			"compile_cache.designs", "compile_cache.refs",
			"server.inflight", "runtime.goroutines", "runtime.gc_pause_last_ns",
		}
		fmt.Fprint(w, "server-side over the run:")
		any := false
		for _, k := range keys {
			if v, ok := delta[k]; ok {
				fmt.Fprintf(w, " %s=%s", k, strconv.FormatFloat(v, 'g', -1, 64))
				any = true
			}
		}
		if !any {
			fmt.Fprint(w, " (no matching instruments)")
		}
		fmt.Fprintln(w)
	}
	if res := r.SlowestTraceID; res != "" {
		fmt.Fprintf(w, "slowest op: %s %v (trace %s)\n", r.SlowestClass,
			r.SlowestLatency.Round(time.Microsecond), res)
	}
}

func fmtLat(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// mean is kept for tests of the arrival schedule.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
