package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeDaemon is a minimal in-process stand-in for hummingbirdd: enough
// protocol to open/edit/report/close sessions, a /readyz whose state is
// test-controlled, /metrics.json counters that advance per request, and
// a /trace/last that echoes the session's last inbound X-Trace-Id —
// deliberately stallable for the coordinated-omission test.
type fakeDaemon struct {
	mu        sync.Mutex
	nextID    int
	sessions  map[string]string // id → last trace id seen
	state     atomic.Value      // readyz "state" string
	requests  atomic.Int64
	stallOnce sync.Once
	stallFor  time.Duration // first edit request stalls the server this long
	stallEnd  atomic.Value  // time.Time
}

func newFakeDaemon(stall time.Duration) *fakeDaemon {
	f := &fakeDaemon{sessions: make(map[string]string), stallFor: stall}
	f.state.Store("ready")
	f.stallEnd.Store(time.Time{})
	return f
}

func (f *fakeDaemon) maybeStall() {
	if f.stallFor <= 0 {
		return
	}
	f.stallOnce.Do(func() { f.stallEnd.Store(time.Now().Add(f.stallFor)) })
	if end := f.stallEnd.Load().(time.Time); time.Now().Before(end) {
		time.Sleep(time.Until(end))
	}
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	note := func(r *http.Request, id string) {
		if tid := r.Header.Get("X-Trace-Id"); tid != "" && id != "" {
			f.mu.Lock()
			if _, ok := f.sessions[id]; ok {
				f.sessions[id] = tid
			}
			f.mu.Unlock()
		}
	}
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		f.mu.Lock()
		f.nextID++
		id := fmt.Sprintf("s%d", f.nextID)
		f.sessions[id] = r.Header.Get("X-Trace-Id")
		f.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"session": id, "ok": true})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/edits", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		f.maybeStall()
		id := r.PathValue("id")
		f.mu.Lock()
		_, ok := f.sessions[id]
		f.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]any{"error": "no such session"})
			return
		}
		note(r, id)
		json.NewEncoder(w).Encode(map[string]any{"session": id, "ok": true})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		note(r, r.PathValue("id"))
		json.NewEncoder(w).Encode(map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"session": r.PathValue("id"), "ok": true})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/trace/last", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		tid := f.sessions[r.PathValue("id")]
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"id": tid, "root": map[string]any{"name": "server.edits"}})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		f.mu.Lock()
		delete(f.sessions, r.PathValue("id"))
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"closed": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		state := f.state.Load().(string)
		if state != "ready" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{"state": state, "ready": state == "ready"})
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"enabled":  true,
			"counters": map[string]int64{"server.requests_total": f.requests.Load()},
			"timers":   map[string]any{},
			"gauges":   map[string]float64{"server.inflight": 1},
		})
	})
	return mux
}

func baseConfig(url string) Config {
	return Config{
		BaseURL:   url,
		Rate:      200,
		Arrivals:  ArrivalsConst,
		Duration:  500 * time.Millisecond,
		Sessions:  4,
		Workload:  "fake",
		Design:    "design fake\nend\n",
		EditInsts: []string{"g1", "g2"},
		TopoNets:  []string{"n1"},
		Seed:      7,
	}
}

// TestCoordinatedOmission is the satellite's stall test: the fake
// server stalls 400ms on its first edit; with a 2-worker pool every
// operation scheduled during the stall queues client-side. A
// coordinated-omission-safe harness charges that queueing to the
// operations — the intent-measured p99 must show hundreds of
// milliseconds — while the service-time histogram (measured from send)
// stays small, because only the two in-flight requests ever saw the
// stall. A send-time-measured harness would report both small.
func TestCoordinatedOmission(t *testing.T) {
	fd := newFakeDaemon(400 * time.Millisecond)
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	cfg := baseConfig(ts.URL)
	cfg.Rate = 400
	cfg.Duration = time.Second
	cfg.Sessions = 1
	cfg.MaxConcurrent = 2
	cfg.Mix = map[string]float64{OpEditDelay: 1}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Classes[OpEditDelay]
	if c.Completed < 100 {
		t.Fatalf("too few ops completed: %+v", c)
	}
	latP99 := time.Duration(c.Latency.P99)
	svcP99 := time.Duration(c.Service.P99)
	if latP99 < 250*time.Millisecond {
		t.Errorf("intent-measured p99 = %v, want >= 250ms: the stall's queueing delay must be charged to scheduled ops", latP99)
	}
	if svcP99 > 150*time.Millisecond {
		t.Errorf("service-time p99 = %v, want small: only 2 requests were in flight during the stall", svcP99)
	}
	if latP99 <= svcP99 {
		t.Errorf("intent p99 (%v) must exceed service p99 (%v) under a stall", latP99, svcP99)
	}
}

func TestRunBasicMix(t *testing.T) {
	fd := newFakeDaemon(0)
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	cfg := baseConfig(ts.URL)
	cfg.Arrivals = ArrivalsPoisson
	cfg.TraceTag = "lt"
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done int64
	for _, c := range res.Classes {
		done += c.Completed
	}
	if done < 50 {
		t.Fatalf("only %d ops completed", done)
	}
	if res.Failed5xx() != 0 {
		t.Fatalf("unexpected failures: %+v", res.Classes)
	}
	// Ramp opens are measured.
	if res.Classes[OpOpen].Completed < int64(cfg.Sessions) {
		t.Fatalf("ramp opens not recorded: %+v", res.Classes[OpOpen])
	}
	// Metrics were scraped before and after, and the delta is visible.
	delta := res.ServerDelta()
	if delta == nil || delta["server.requests_total"] <= 0 {
		t.Fatalf("server delta missing: %v", delta)
	}
	// Slowest-op replay fetched a span tree whose id matches the replay tag.
	if res.SlowestTraceID == "" {
		t.Fatalf("no slowest op recorded")
	}
	if res.SlowestTrace == nil {
		t.Fatalf("slowest-op trace not fetched (slowest was %s on class %s)", res.SlowestTraceID, res.SlowestClass)
	}
	var tr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(res.SlowestTrace, &tr); err != nil || tr.ID != res.SlowestTraceID+"-replay" {
		t.Fatalf("trace id %q, want %q", tr.ID, res.SlowestTraceID+"-replay")
	}
	rows := res.BenchRows()
	if len(rows) == 0 {
		t.Fatal("no bench rows")
	}
	for _, row := range rows {
		if row.Workload != "fake" || row.Arrivals != ArrivalsPoisson {
			t.Fatalf("row metadata: %+v", row)
		}
		if row.Ops > 0 && row.P50Ns <= 0 {
			t.Fatalf("row without latency: %+v", row)
		}
	}
}

// TestDrainStopsSessionScheduling flips the fake replica to the
// draining state mid-run and asserts the generator stops scheduling
// session-creating operations while the rest of the mix keeps flowing.
func TestDrainStopsSessionScheduling(t *testing.T) {
	fd := newFakeDaemon(0)
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	cfg := baseConfig(ts.URL)
	cfg.Duration = 900 * time.Millisecond
	cfg.DrainPoll = 30 * time.Millisecond
	cfg.Mix = map[string]float64{OpParkResume: 0.5, OpEditDelay: 0.5}
	go func() {
		time.Sleep(250 * time.Millisecond)
		fd.state.Store("draining")
	}()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DrainObserved {
		t.Fatal("drain not observed")
	}
	pr := res.Classes[OpParkResume]
	if pr.SkippedDrain == 0 {
		t.Fatalf("park_resume not withheld during drain: %+v", pr)
	}
	// The non-session-creating class kept flowing after the flip.
	ed := res.Classes[OpEditDelay]
	if ed.Completed < pr.Completed {
		t.Fatalf("edit flow did not continue during drain: edits %+v, park %+v", ed, pr)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{},
		{BaseURL: "x"},
		{BaseURL: "x", Rate: 1},
		{BaseURL: "x", Rate: 1, Duration: time.Second},
		{BaseURL: "x", Rate: 1, Duration: time.Second, Sessions: 1},
		{BaseURL: "x", Rate: 1, Duration: time.Second, Sessions: 1, Design: "d", Arrivals: "bursty"},
		{BaseURL: "x", Rate: 1, Duration: time.Second, Sessions: 1, Design: "d",
			Mix: map[string]float64{"destroy": 1}},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d: want validation error", i)
		}
	}
}

func TestErrorAccounting(t *testing.T) {
	// A server that sheds everything: ops complete, all counted as 429s.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"session": "s1"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{"error": "shed"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := baseConfig(ts.URL)
	cfg.Sessions = 1
	cfg.Duration = 300 * time.Millisecond
	cfg.Mix = map[string]float64{OpEditDelay: 1}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Classes[OpEditDelay]
	if c.Shed == 0 || c.Errors["429"] != c.Shed {
		t.Fatalf("shed accounting: %+v", c)
	}
	if c.Failed != 0 {
		t.Fatalf("429 is shed, not failure: %+v", c)
	}
}
