package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hummingbird/internal/clock"
)

// The textual netlist format is the repository's stand-in for the OCT
// database interface of §8: a line-oriented description of clocks, timed
// primary ports, combinational modules and cell instances.
//
//	# comment
//	design NAME
//	clock NAME period TIME rise TIME fall TIME
//	input NAME [clock CLK edge rise|fall offset TIME]
//	output NAME [clock CLK edge rise|fall offset TIME]
//	module NAME
//	  input A B ...
//	  output Y ...
//	  inst INST CELL PIN=NET ...
//	endmodule
//	inst INST CELL|MODULE PIN=NET ...
//	end
//
// TIME accepts "250", "250ps", "1.5ns", "-0.2ns", "2us"; a bare integer is
// picoseconds.

// ParseTime parses a time literal into picoseconds.
func ParseTime(s string) (clock.Time, error) {
	unit := clock.Ps
	num := s
	switch {
	case strings.HasSuffix(s, "ps"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		num, unit = s[:len(s)-2], clock.Ns
	case strings.HasSuffix(s, "us"):
		num, unit = s[:len(s)-2], clock.Us
	}
	if num == "" {
		return 0, fmt.Errorf("netlist: empty time literal %q", s)
	}
	if i, err := strconv.ParseInt(num, 10, 64); err == nil {
		return clock.Time(i) * unit, nil
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("netlist: bad time literal %q", s)
	}
	v := f * float64(unit)
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("netlist: time literal %q is not a whole number of picoseconds", s)
	}
	return clock.Time(v), nil
}

// FormatTime renders a time in the most compact unit that stays integral.
func FormatTime(t clock.Time) string {
	switch {
	case t == 0:
		return "0"
	case t%clock.Us == 0:
		return fmt.Sprintf("%dus", t/clock.Us)
	case t%clock.Ns == 0:
		return fmt.Sprintf("%dns", t/clock.Ns)
	default:
		return fmt.Sprintf("%dps", t)
	}
}

// Parse reads one design in the textual netlist format.
func Parse(r io.Reader) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		top    *Design
		cur    *Design // top or module being filled
		lineNo int
		ended  bool
	)
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fail("content after 'end'")
		}
		f := strings.Fields(line)
		switch f[0] {
		case "design":
			if top != nil {
				return nil, fail("duplicate design line")
			}
			if len(f) != 2 {
				return nil, fail("usage: design NAME")
			}
			top = New(f[1])
			cur = top
		case "clock":
			if cur == nil {
				return nil, fail("clock before design")
			}
			if cur != top {
				return nil, fail("clock inside module")
			}
			sig, err := parseClock(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			top.AddClock(sig)
		case "input", "output":
			if cur == nil {
				return nil, fail("port before design")
			}
			dir := Input
			if f[0] == "output" {
				dir = Output
			}
			if err := parsePorts(cur, dir, f[1:], cur != top); err != nil {
				return nil, fail("%v", err)
			}
		case "module":
			if cur == nil {
				return nil, fail("module before design")
			}
			if cur != top {
				return nil, fail("nested module")
			}
			if len(f) != 2 {
				return nil, fail("usage: module NAME")
			}
			if _, dup := top.Modules[f[1]]; dup {
				return nil, fail("duplicate module %q", f[1])
			}
			cur = New(f[1])
		case "endmodule":
			if cur == top || cur == nil {
				return nil, fail("endmodule outside module")
			}
			top.AddModule(cur)
			cur = top
		case "inst":
			if cur == nil {
				return nil, fail("inst before design")
			}
			if len(f) < 3 {
				return nil, fail("usage: inst NAME REF PIN=NET ...")
			}
			conns := make(map[string]string, len(f)-3)
			for _, kv := range f[3:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 || eq == len(kv)-1 {
					return nil, fail("bad connection %q (want PIN=NET)", kv)
				}
				pin, net := kv[:eq], kv[eq+1:]
				if _, dup := conns[pin]; dup {
					return nil, fail("pin %q connected twice", pin)
				}
				conns[pin] = net
			}
			cur.AddInstance(Instance{Name: f[1], Ref: f[2], Conns: conns})
		case "end":
			if cur == nil {
				return nil, fail("end before design")
			}
			if cur != top {
				return nil, fail("end inside module (missing endmodule)")
			}
			ended = true
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if top == nil {
		return nil, fmt.Errorf("netlist: no design found")
	}
	if !ended {
		return nil, fmt.Errorf("netlist: missing 'end'")
	}
	return top, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Design, error) { return Parse(strings.NewReader(s)) }

func parseClock(f []string) (clock.Signal, error) {
	// clock NAME period TIME rise TIME fall TIME
	var sig clock.Signal
	if len(f) != 8 || f[2] != "period" || f[4] != "rise" || f[6] != "fall" {
		return sig, fmt.Errorf("usage: clock NAME period TIME rise TIME fall TIME")
	}
	sig.Name = f[1]
	var err error
	if sig.Period, err = ParseTime(f[3]); err != nil {
		return sig, err
	}
	if sig.RiseAt, err = ParseTime(f[5]); err != nil {
		return sig, err
	}
	if sig.FallAt, err = ParseTime(f[7]); err != nil {
		return sig, err
	}
	return sig, sig.Validate()
}

// parsePorts handles both the bare multi-name form used inside modules
// ("input A B C") and the timed top-level form
// ("input NAME clock CLK edge rise|fall offset TIME").
func parsePorts(d *Design, dir PortDir, f []string, inModule bool) error {
	if len(f) == 0 {
		return fmt.Errorf("port line without names")
	}
	if len(f) >= 2 && f[1] == "clock" {
		if inModule {
			return fmt.Errorf("module port %q may not carry a timing reference", f[0])
		}
		p := Port{Name: f[0], Dir: dir}
		rest := f[1:]
		for len(rest) > 0 {
			switch rest[0] {
			case "clock":
				if len(rest) < 2 {
					return fmt.Errorf("port %s: clock needs a name", p.Name)
				}
				p.RefClock = rest[1]
				rest = rest[2:]
			case "edge":
				if len(rest) < 2 {
					return fmt.Errorf("port %s: edge needs rise|fall", p.Name)
				}
				switch rest[1] {
				case "rise":
					p.RefEdge = clock.Rise
				case "fall":
					p.RefEdge = clock.Fall
				default:
					return fmt.Errorf("port %s: bad edge %q", p.Name, rest[1])
				}
				rest = rest[2:]
			case "offset":
				if len(rest) < 2 {
					return fmt.Errorf("port %s: offset needs a time", p.Name)
				}
				t, err := ParseTime(rest[1])
				if err != nil {
					return err
				}
				p.Offset = t
				rest = rest[2:]
			default:
				return fmt.Errorf("port %s: unknown attribute %q", p.Name, rest[0])
			}
		}
		d.AddPort(p)
		return nil
	}
	for _, name := range f {
		d.AddPort(Port{Name: name, Dir: dir})
	}
	return nil
}

// Write renders the design in the textual netlist format; Parse(Write(d))
// round-trips.
func Write(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\n", d.Name)
	for _, c := range d.Clocks {
		fmt.Fprintf(bw, "clock %s period %s rise %s fall %s\n",
			c.Name, FormatTime(c.Period), FormatTime(c.RiseAt), FormatTime(c.FallAt))
	}
	for _, p := range d.Ports {
		if p.RefClock == "" {
			fmt.Fprintf(bw, "%s %s\n", p.Dir, p.Name)
			continue
		}
		fmt.Fprintf(bw, "%s %s clock %s edge %s offset %s\n",
			p.Dir, p.Name, p.RefClock, p.RefEdge, FormatTime(p.Offset))
	}
	moduleNames := make([]string, 0, len(d.Modules))
	for n := range d.Modules {
		moduleNames = append(moduleNames, n)
	}
	for i := 1; i < len(moduleNames); i++ { // insertion sort; tiny n
		for j := i; j > 0 && moduleNames[j-1] > moduleNames[j]; j-- {
			moduleNames[j-1], moduleNames[j] = moduleNames[j], moduleNames[j-1]
		}
	}
	for _, name := range moduleNames {
		m := d.Modules[name]
		fmt.Fprintf(bw, "module %s\n", m.Name)
		writePortGroups(bw, m)
		for _, inst := range m.Instances {
			writeInst(bw, inst, "  ")
		}
		fmt.Fprintf(bw, "endmodule\n")
	}
	for _, inst := range d.Instances {
		writeInst(bw, inst, "")
	}
	fmt.Fprintf(bw, "end\n")
	return bw.Flush()
}

func writePortGroups(w io.Writer, m *Design) {
	var ins, outs []string
	for _, p := range m.Ports {
		if p.Dir == Input {
			ins = append(ins, p.Name)
		} else {
			outs = append(outs, p.Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(w, "  input %s\n", strings.Join(ins, " "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(w, "  output %s\n", strings.Join(outs, " "))
	}
}

func writeInst(w io.Writer, inst Instance, indent string) {
	pins := make([]string, 0, len(inst.Conns))
	for pin := range inst.Conns {
		pins = append(pins, pin)
	}
	for i := 1; i < len(pins); i++ {
		for j := i; j > 0 && pins[j-1] > pins[j]; j-- {
			pins[j-1], pins[j] = pins[j], pins[j-1]
		}
	}
	var sb strings.Builder
	for _, pin := range pins {
		sb.WriteByte(' ')
		sb.WriteString(pin)
		sb.WriteByte('=')
		sb.WriteString(inst.Conns[pin])
	}
	fmt.Fprintf(w, "%sinst %s %s%s\n", indent, inst.Name, inst.Ref, sb.String())
}
