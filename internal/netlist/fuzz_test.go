package netlist

import (
	"strings"
	"testing"
)

// FuzzParse checks the netlist parser never panics and that accepted
// designs survive a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sampleText)
	f.Add("design d\nend\n")
	f.Add("design d\nclock c period 10ns rise 0 fall 5ns\nend\n")
	f.Add("design d\ninst i INV_X1 A=x Y=y\nend\n")
	f.Add("module m\nendmodule\n")
	f.Add("design d\ninput A clock c edge rise offset -1ns\nend\n")
	f.Add("#\n\ndesign \x00weird\nend")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ParseString(text)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, d); err != nil {
			t.Fatalf("write of parsed design failed: %v", err)
		}
		d2, err := ParseString(sb.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
		if d2.Name != d.Name || len(d2.Instances) != len(d.Instances) {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzParseTime checks the time-literal parser never panics and agrees
// with FormatTime on its own output.
func FuzzParseTime(f *testing.F) {
	for _, s := range []string{"0", "1ns", "-2.5ns", "100ps", "3us", "x", "9999999999999999999ns"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseTime(s)
		if err != nil {
			return
		}
		back, err := ParseTime(FormatTime(v))
		if err != nil || back != v {
			t.Fatalf("FormatTime(%v) = %q does not round trip (%v, %v)", v, FormatTime(v), back, err)
		}
	})
}
