// Package netlist models designs the way the paper's synthesis environment
// presents them (§1): networks of combinational logic and synchronising
// elements, optionally hierarchical ("a 'hierarchical' description ... in
// which the combinational logic is contained in a single module", §8's SM1H
// benchmark), together with the clock generators and the timing references
// of the primary ports.
//
// A Design owns clock declarations, ports, instances and submodule
// definitions. Each declared clock drives a net bearing the clock's name
// (the clock generator output terminal of §4). Primary ports connect to
// nets bearing the port's name.
package netlist

import (
	"fmt"
	"sort"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
)

// PortDir distinguishes primary inputs from primary outputs.
type PortDir uint8

const (
	// Input is a primary input port.
	Input PortDir = iota
	// Output is a primary output port.
	Output
)

// String returns "input" or "output".
func (d PortDir) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Port is a primary input or output. Hitchcock-style "assorted assertion
// times at the inputs and closure times at the outputs" [6] are expressed by
// referencing a clock edge: an input is asserted at (edge time + Offset);
// an output closes at (edge time + Offset). Ports of submodules carry no
// timing reference (RefClock empty) — their timing comes from the
// instantiating context.
type Port struct {
	Name     string
	Dir      PortDir
	RefClock string
	RefEdge  clock.EdgeKind
	Offset   clock.Time
}

// Instance is one placed component: a library cell or a submodule.
type Instance struct {
	Name string
	// Ref names either a library cell or a module defined in the design.
	Ref string
	// Conns maps the referenced component's pin (or module port) names to
	// net names.
	Conns map[string]string
}

// Design is a netlist, possibly with submodule definitions.
type Design struct {
	Name      string
	Clocks    []clock.Signal
	Ports     []Port
	Instances []Instance
	// Modules holds submodule definitions by name. Submodules must be
	// purely combinational (the paper's hierarchy use case) and may not
	// define clocks or nest further modules.
	Modules map[string]*Design
}

// New returns an empty design with the given name.
func New(name string) *Design {
	return &Design{Name: name, Modules: map[string]*Design{}}
}

// AddClock declares a clock generator; its output net bears the clock name.
func (d *Design) AddClock(s clock.Signal) { d.Clocks = append(d.Clocks, s) }

// AddPort declares a primary port; its net bears the port name.
func (d *Design) AddPort(p Port) { d.Ports = append(d.Ports, p) }

// AddInstance places a component.
func (d *Design) AddInstance(inst Instance) { d.Instances = append(d.Instances, inst) }

// AddModule registers a submodule definition.
func (d *Design) AddModule(m *Design) {
	if d.Modules == nil {
		d.Modules = map[string]*Design{}
	}
	d.Modules[m.Name] = m
}

// Port returns the named port, or nil.
func (d *Design) Port(name string) *Port {
	for i := range d.Ports {
		if d.Ports[i].Name == name {
			return &d.Ports[i]
		}
	}
	return nil
}

// ClockNames returns the declared clock names in declaration order.
func (d *Design) ClockNames() []string {
	names := make([]string, len(d.Clocks))
	for i, c := range d.Clocks {
		names[i] = c.Name
	}
	return names
}

// ClockSet builds the clock.Set of the declared clocks.
func (d *Design) ClockSet() (*clock.Set, error) {
	if len(d.Clocks) == 0 {
		return nil, fmt.Errorf("design %s: no clocks declared", d.Name)
	}
	return clock.NewSet(d.Clocks...)
}

// NetNames returns every net name referenced by the design — port nets,
// clock nets and instance connections — sorted.
func (d *Design) NetNames() []string {
	seen := map[string]bool{}
	for _, c := range d.Clocks {
		seen[c.Name] = true
	}
	for _, p := range d.Ports {
		seen[p.Name] = true
	}
	for _, inst := range d.Instances {
		for _, net := range inst.Conns {
			seen[net] = true
		}
	}
	nets := make([]string, 0, len(seen))
	for n := range seen {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	return nets
}

// Stats summarises a design for Table-1-style reporting.
type Stats struct {
	Cells   int // leaf cell instances after hypothetical flattening
	Modules int // module instances at top level
	Nets    int // nets at top level
	Latches int // synchronising elements (leaf, flattened count)
}

// Stats computes design statistics against the given library.
func (d *Design) Stats(lib *celllib.Library) Stats {
	var s Stats
	s.Nets = len(d.NetNames())
	var count func(des *Design, mult int)
	count = func(des *Design, mult int) {
		for _, inst := range des.Instances {
			if c := lib.Cell(inst.Ref); c != nil {
				s.Cells += mult
				if c.IsSync() {
					s.Latches += mult
				}
				continue
			}
			if m, ok := d.Modules[inst.Ref]; ok {
				if des == d {
					s.Modules++
				}
				count(m, mult)
			}
		}
	}
	count(d, 1)
	return s
}

// Validate checks design consistency against the library:
//   - every instance references a known cell or module,
//   - every connection names a pin/port of the referenced component,
//   - every input pin is connected and every net has at most one driver,
//   - clock/port/net name collisions are rejected,
//   - submodules are purely combinational and non-nested,
//   - port timing references name declared clocks.
func (d *Design) Validate(lib *celllib.Library) error {
	if d.Name == "" {
		return fmt.Errorf("netlist: design with empty name")
	}
	clockNames := map[string]bool{}
	for _, c := range d.Clocks {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("design %s: %w", d.Name, err)
		}
		if clockNames[c.Name] {
			return fmt.Errorf("design %s: duplicate clock %q", d.Name, c.Name)
		}
		clockNames[c.Name] = true
	}
	portNames := map[string]bool{}
	for _, p := range d.Ports {
		if p.Name == "" {
			return fmt.Errorf("design %s: port with empty name", d.Name)
		}
		if portNames[p.Name] {
			return fmt.Errorf("design %s: duplicate port %q", d.Name, p.Name)
		}
		if clockNames[p.Name] {
			return fmt.Errorf("design %s: port %q collides with clock net", d.Name, p.Name)
		}
		portNames[p.Name] = true
		if p.RefClock != "" && !clockNames[p.RefClock] {
			return fmt.Errorf("design %s: port %q references unknown clock %q", d.Name, p.Name, p.RefClock)
		}
	}
	for name, m := range d.Modules {
		if name != m.Name {
			return fmt.Errorf("design %s: module map key %q != module name %q", d.Name, name, m.Name)
		}
		if len(m.Clocks) != 0 {
			return fmt.Errorf("design %s: module %s declares clocks (modules must be combinational)", d.Name, name)
		}
		if len(m.Modules) != 0 {
			return fmt.Errorf("design %s: module %s nests modules", d.Name, name)
		}
		for _, inst := range m.Instances {
			c := lib.Cell(inst.Ref)
			if c == nil {
				return fmt.Errorf("design %s: module %s instance %s references unknown cell %q", d.Name, name, inst.Name, inst.Ref)
			}
			if c.IsSync() {
				return fmt.Errorf("design %s: module %s contains synchronising element %s (%s)", d.Name, name, inst.Name, inst.Ref)
			}
		}
		if err := m.checkConnectivity(lib, nil); err != nil {
			return fmt.Errorf("design %s: module %s: %w", d.Name, name, err)
		}
	}
	return d.checkConnectivity(lib, clockNames)
}

// checkConnectivity verifies instance references, connection completeness
// and driver rules for one level of the hierarchy. Nets normally have at
// most one driver; the exception is a *tristate bus*: a net whose drivers
// are all clocked tristate drivers ("Clocked tristate drivers are modeled
// in the same way as transparent latches", §5) may have any number of
// them, on the assumption that the enabling clock phases are disjoint.
func (d *Design) checkConnectivity(lib *celllib.Library, clockNets map[string]bool) error {
	instNames := map[string]bool{}
	drivers := map[string]string{} // net -> driver description
	triOnly := map[string]bool{}   // net -> all drivers so far are tristate
	for n := range clockNets {
		drivers[n] = "clock generator " + n
	}
	for _, p := range d.Ports {
		if p.Dir == Input {
			drivers[p.Name] = "primary input " + p.Name
		}
	}
	for _, inst := range d.Instances {
		if inst.Name == "" {
			return fmt.Errorf("instance with empty name (ref %q)", inst.Ref)
		}
		if instNames[inst.Name] {
			return fmt.Errorf("duplicate instance %q", inst.Name)
		}
		instNames[inst.Name] = true

		var inputs, outputs []string
		if c := lib.Cell(inst.Ref); c != nil {
			inputs, outputs = c.Inputs(), c.Outputs()
		} else if m, ok := d.Modules[inst.Ref]; ok {
			for _, p := range m.Ports {
				if p.Dir == Input {
					inputs = append(inputs, p.Name)
				} else {
					outputs = append(outputs, p.Name)
				}
			}
		} else {
			return fmt.Errorf("instance %s references unknown cell/module %q", inst.Name, inst.Ref)
		}
		known := map[string]bool{}
		for _, p := range inputs {
			known[p] = true
		}
		for _, p := range outputs {
			known[p] = true
		}
		for pin, net := range inst.Conns {
			if !known[pin] {
				return fmt.Errorf("instance %s (%s): unknown pin %q", inst.Name, inst.Ref, pin)
			}
			if net == "" {
				return fmt.Errorf("instance %s (%s): pin %q connected to empty net name", inst.Name, inst.Ref, pin)
			}
		}
		for _, pin := range inputs {
			if _, ok := inst.Conns[pin]; !ok {
				return fmt.Errorf("instance %s (%s): input pin %q unconnected", inst.Name, inst.Ref, pin)
			}
		}
		isTri := false
		if c := lib.Cell(inst.Ref); c != nil && c.Kind == celllib.Tristate {
			isTri = true
		}
		for _, pin := range outputs {
			net, ok := inst.Conns[pin]
			if !ok {
				continue // dangling outputs are permitted
			}
			if prev, taken := drivers[net]; taken {
				if !(isTri && triOnly[net]) {
					return fmt.Errorf("net %q driven by both %s and instance %s pin %s", net, prev, inst.Name, pin)
				}
			}
			drivers[net] = fmt.Sprintf("instance %s pin %s", inst.Name, pin)
			if _, seen := triOnly[net]; !seen {
				triOnly[net] = isTri
			} else {
				triOnly[net] = triOnly[net] && isTri
			}
		}
	}
	// Every net that is consumed must have a driver.
	for _, inst := range d.Instances {
		var inputs []string
		if c := lib.Cell(inst.Ref); c != nil {
			inputs = c.Inputs()
		} else if m, ok := d.Modules[inst.Ref]; ok {
			for _, p := range m.Ports {
				if p.Dir == Input {
					inputs = append(inputs, p.Name)
				}
			}
		}
		for _, pin := range inputs {
			net := inst.Conns[pin]
			if _, ok := drivers[net]; !ok {
				return fmt.Errorf("instance %s pin %s: net %q has no driver", inst.Name, pin, net)
			}
		}
	}
	for _, p := range d.Ports {
		if p.Dir == Output {
			if _, ok := drivers[p.Name]; !ok {
				return fmt.Errorf("primary output %q has no driver", p.Name)
			}
		}
	}
	return nil
}

// Flatten expands every module instance into its leaf cells, prefixing
// inner instance and net names with "<instname>/". The result has no module
// instances. Flatten assumes Validate passed.
func (d *Design) Flatten(lib *celllib.Library) *Design {
	flat := New(d.Name)
	flat.Clocks = append(flat.Clocks, d.Clocks...)
	flat.Ports = append(flat.Ports, d.Ports...)
	for _, inst := range d.Instances {
		if lib.Cell(inst.Ref) != nil {
			flat.AddInstance(Instance{Name: inst.Name, Ref: inst.Ref, Conns: copyConns(inst.Conns)})
			continue
		}
		m := d.Modules[inst.Ref]
		prefix := inst.Name + "/"
		// Map module port name -> outer net.
		portNet := map[string]string{}
		for _, p := range m.Ports {
			if net, ok := inst.Conns[p.Name]; ok {
				portNet[p.Name] = net
			} else {
				portNet[p.Name] = prefix + p.Name // dangling module port
			}
		}
		for _, mi := range m.Instances {
			conns := make(map[string]string, len(mi.Conns))
			for pin, net := range mi.Conns {
				if outer, ok := portNet[net]; ok {
					conns[pin] = outer
				} else {
					conns[pin] = prefix + net
				}
			}
			flat.AddInstance(Instance{Name: prefix + mi.Name, Ref: mi.Ref, Conns: conns})
		}
	}
	return flat
}

func copyConns(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// InstancesSortedByName returns the instances sorted by name; reporting
// helper for deterministic output.
func (d *Design) InstancesSortedByName() []Instance {
	out := append([]Instance(nil), d.Instances...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
