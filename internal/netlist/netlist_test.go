package netlist

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
)

var lib = celllib.Default()

// smallDesign builds a valid two-phase latch pipeline by hand:
//
//	IN -> g1(INV) -> l1(DLATCH,phi1) -> g2(NAND2) -> l2(DFF,phi2) -> OUT
func smallDesign() *Design {
	d := New("small")
	d.AddClock(clock.Signal{Name: "phi1", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 40 * clock.Ns})
	d.AddClock(clock.Signal{Name: "phi2", Period: 100 * clock.Ns, RiseAt: 50 * clock.Ns, FallAt: 90 * clock.Ns})
	d.AddPort(Port{Name: "IN", Dir: Input, RefClock: "phi2", RefEdge: clock.Fall})
	d.AddPort(Port{Name: "OUT", Dir: Output, RefClock: "phi1", RefEdge: clock.Fall, Offset: -200})
	d.AddInstance(Instance{Name: "g1", Ref: "INV_X1", Conns: map[string]string{"A": "IN", "Y": "n1"}})
	d.AddInstance(Instance{Name: "l1", Ref: "DLATCH_X1", Conns: map[string]string{"D": "n1", "G": "phi1", "Q": "n2"}})
	d.AddInstance(Instance{Name: "g2", Ref: "NAND2_X1", Conns: map[string]string{"A": "n2", "B": "n2", "Y": "n3"}})
	d.AddInstance(Instance{Name: "l2", Ref: "DFF_X1", Conns: map[string]string{"D": "n3", "CK": "phi2", "Q": "OUT"}})
	return d
}

func TestValidateGood(t *testing.T) {
	if err := smallDesign().Validate(lib); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Design)
		want   string
	}{
		{"unknown ref", func(d *Design) { d.Instances[0].Ref = "NOPE" }, "unknown cell/module"},
		{"unknown pin", func(d *Design) { d.Instances[0].Conns["Z"] = "n9" }, "unknown pin"},
		{"unconnected input", func(d *Design) { delete(d.Instances[0].Conns, "A") }, "unconnected"},
		{"double driver", func(d *Design) { d.Instances[0].Conns["Y"] = "IN" }, "driven by both"},
		{"no driver", func(d *Design) { d.Instances[0].Conns["A"] = "ghost" }, "no driver"},
		{"dup instance", func(d *Design) {
			d.AddInstance(Instance{Name: "g1", Ref: "INV_X1", Conns: map[string]string{"A": "IN", "Y": "x"}})
		}, "duplicate instance"},
		{"dup clock", func(d *Design) { d.AddClock(d.Clocks[0]) }, "duplicate clock"},
		{"dup port", func(d *Design) { d.AddPort(Port{Name: "IN", Dir: Input}) }, "duplicate port"},
		{"port clock collision", func(d *Design) { d.AddPort(Port{Name: "phi1", Dir: Input}) }, "collides with clock"},
		{"bad port clock ref", func(d *Design) { d.Ports[0].RefClock = "nope" }, "unknown clock"},
		{"empty instance name", func(d *Design) { d.Instances[0].Name = "" }, "empty name"},
	}
	for _, c := range cases {
		d := smallDesign()
		c.mutate(d)
		err := d.Validate(lib)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestTristateBusAllowed(t *testing.T) {
	d := New("bus")
	d.AddClock(clock.Signal{Name: "phi1", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 40 * clock.Ns})
	d.AddClock(clock.Signal{Name: "phi2", Period: 100 * clock.Ns, RiseAt: 50 * clock.Ns, FallAt: 90 * clock.Ns})
	d.AddPort(Port{Name: "A", Dir: Input, RefClock: "phi1", RefEdge: clock.Rise})
	d.AddPort(Port{Name: "B", Dir: Input, RefClock: "phi1", RefEdge: clock.Rise})
	d.AddPort(Port{Name: "OUT", Dir: Output, RefClock: "phi2", RefEdge: clock.Fall})
	d.AddInstance(Instance{Name: "t1", Ref: "TBUF_X1", Conns: map[string]string{"A": "A", "EN": "phi1", "Y": "bus"}})
	d.AddInstance(Instance{Name: "t2", Ref: "TBUF_X1", Conns: map[string]string{"A": "B", "EN": "phi2", "Y": "bus"}})
	d.AddInstance(Instance{Name: "g1", Ref: "BUF_X1", Conns: map[string]string{"A": "bus", "Y": "OUT"}})
	if err := d.Validate(lib); err != nil {
		t.Fatalf("tristate bus rejected: %v", err)
	}
	// A combinational driver sharing the bus is still an error,
	// regardless of declaration order.
	d.AddInstance(Instance{Name: "bad", Ref: "INV_X1", Conns: map[string]string{"A": "A", "Y": "bus"}})
	if err := d.Validate(lib); err == nil || !strings.Contains(err.Error(), "driven by both") {
		t.Fatalf("mixed bus accepted: %v", err)
	}
	d.Instances = d.Instances[:len(d.Instances)-1]
	d.Instances = append([]Instance{{Name: "bad", Ref: "INV_X1", Conns: map[string]string{"A": "A", "Y": "bus"}}}, d.Instances...)
	if err := d.Validate(lib); err == nil || !strings.Contains(err.Error(), "driven by both") {
		t.Fatalf("mixed bus (comb first) accepted: %v", err)
	}
}

func TestDanglingOutputAllowed(t *testing.T) {
	d := smallDesign()
	// Disconnect the DFF's Q; the primary output then has no driver, so
	// retarget the port too.
	delete(d.Instances[3].Conns, "Q")
	d.Ports[1].Name = "n3"
	if err := d.Validate(lib); err != nil {
		t.Fatalf("dangling output rejected: %v", err)
	}
}

func TestModuleValidation(t *testing.T) {
	d := smallDesign()
	m := New("COMB")
	m.AddPort(Port{Name: "A", Dir: Input})
	m.AddPort(Port{Name: "Y", Dir: Output})
	m.AddInstance(Instance{Name: "i1", Ref: "INV_X1", Conns: map[string]string{"A": "A", "Y": "Y"}})
	d.AddModule(m)
	d.AddInstance(Instance{Name: "u1", Ref: "COMB", Conns: map[string]string{"A": "IN", "Y": "mo"}})
	if err := d.Validate(lib); err != nil {
		t.Fatalf("module design rejected: %v", err)
	}

	bad := New("BAD")
	bad.AddPort(Port{Name: "D", Dir: Input})
	bad.AddPort(Port{Name: "Q", Dir: Output})
	bad.AddInstance(Instance{Name: "l", Ref: "DLATCH_X1", Conns: map[string]string{"D": "D", "G": "D", "Q": "Q"}})
	d2 := smallDesign()
	d2.AddModule(bad)
	err := d2.Validate(lib)
	if err == nil || !strings.Contains(err.Error(), "synchronising element") {
		t.Fatalf("latch inside module accepted: %v", err)
	}
}

func TestFlatten(t *testing.T) {
	d := smallDesign()
	m := New("PAIR")
	m.AddPort(Port{Name: "A", Dir: Input})
	m.AddPort(Port{Name: "Y", Dir: Output})
	m.AddInstance(Instance{Name: "i1", Ref: "INV_X1", Conns: map[string]string{"A": "A", "Y": "t"}})
	m.AddInstance(Instance{Name: "i2", Ref: "INV_X1", Conns: map[string]string{"A": "t", "Y": "Y"}})
	d.AddModule(m)
	d.AddInstance(Instance{Name: "u1", Ref: "PAIR", Conns: map[string]string{"A": "IN", "Y": "mo"}})
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	flat := d.Flatten(lib)
	if err := flat.Validate(lib); err != nil {
		t.Fatalf("flattened design invalid: %v", err)
	}
	// 4 leaf instances + 2 from the module.
	if len(flat.Instances) != 6 {
		t.Fatalf("flat instances = %d, want 6", len(flat.Instances))
	}
	var inner *Instance
	for i := range flat.Instances {
		if flat.Instances[i].Name == "u1/i2" {
			inner = &flat.Instances[i]
		}
	}
	if inner == nil {
		t.Fatal("prefixed instance u1/i2 missing")
	}
	if inner.Conns["A"] != "u1/t" || inner.Conns["Y"] != "mo" {
		t.Fatalf("port mapping wrong: %v", inner.Conns)
	}
}

func TestStats(t *testing.T) {
	d := smallDesign()
	s := d.Stats(lib)
	if s.Cells != 4 || s.Latches != 2 {
		t.Fatalf("stats = %+v", s)
	}
	m := New("PAIR")
	m.AddPort(Port{Name: "A", Dir: Input})
	m.AddPort(Port{Name: "Y", Dir: Output})
	m.AddInstance(Instance{Name: "i1", Ref: "INV_X1", Conns: map[string]string{"A": "A", "Y": "t"}})
	m.AddInstance(Instance{Name: "i2", Ref: "INV_X1", Conns: map[string]string{"A": "t", "Y": "Y"}})
	d.AddModule(m)
	d.AddInstance(Instance{Name: "u1", Ref: "PAIR", Conns: map[string]string{"A": "IN", "Y": "mo"}})
	s = d.Stats(lib)
	if s.Cells != 6 || s.Modules != 1 {
		t.Fatalf("stats with module = %+v", s)
	}
}

func TestClockSet(t *testing.T) {
	d := smallDesign()
	cs, err := d.ClockSet()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Overall() != 100*clock.Ns {
		t.Fatalf("overall = %v", cs.Overall())
	}
	if _, err := New("empty").ClockSet(); err == nil {
		t.Fatal("clockless design accepted")
	}
}

func TestNetNames(t *testing.T) {
	nets := smallDesign().NetNames()
	want := []string{"IN", "OUT", "n1", "n2", "n3", "phi1", "phi2"}
	if len(nets) != len(want) {
		t.Fatalf("nets = %v", nets)
	}
	for i := range want {
		if nets[i] != want[i] {
			t.Fatalf("nets = %v, want %v", nets, want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want clock.Time
	}{
		{"0", 0}, {"250", 250}, {"250ps", 250}, {"1ns", 1000},
		{"1.5ns", 1500}, {"-0.2ns", -200}, {"2us", 2 * clock.Us}, {"-3", -3},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "ns", "abc", "1.0001ns", "--3"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) accepted", bad)
		}
	}
}

func TestFormatTimeRoundTrip(t *testing.T) {
	for _, v := range []clock.Time{0, 1, 250, 1000, 1500, 100000, 2 * clock.Us} {
		got, err := ParseTime(FormatTime(v))
		if err != nil || got != v {
			t.Errorf("round trip %v -> %q -> %v (%v)", v, FormatTime(v), got, err)
		}
	}
}

const sampleText = `
# sample design
design demo
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 50ns rise 25ns fall 45ns
input IN clock phi2 edge fall offset 0
output OUT clock phi1 edge fall offset -0.2ns
module PAIR
  input A
  output Y
  inst i1 INV_X1 A=A Y=t
  inst i2 INV_X1 A=t Y=Y
endmodule
inst u1 PAIR A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=OUT
end
`

func TestParseSample(t *testing.T) {
	d, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || len(d.Clocks) != 2 || len(d.Ports) != 2 || len(d.Instances) != 2 {
		t.Fatalf("parsed shape wrong: %+v", d)
	}
	if d.Clocks[1].Period != 50*clock.Ns || d.Clocks[1].RiseAt != 25*clock.Ns {
		t.Fatalf("clock parse wrong: %+v", d.Clocks[1])
	}
	if p := d.Port("OUT"); p == nil || p.RefClock != "phi1" || p.RefEdge != clock.Fall || p.Offset != -200 {
		t.Fatalf("port parse wrong: %+v", p)
	}
	m := d.Modules["PAIR"]
	if m == nil || len(m.Instances) != 2 || len(m.Ports) != 2 {
		t.Fatalf("module parse wrong: %+v", m)
	}
	if err := d.Validate(lib); err != nil {
		t.Fatalf("parsed design invalid: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"no design", "end\n", "end before design"},
		{"missing end", "design d\n", "missing 'end'"},
		{"dup design", "design a\ndesign b\nend\n", "duplicate design"},
		{"bad clock", "design d\nclock c period 0 rise 0 fall 1\nend\n", "period"},
		{"clock usage", "design d\nclock c period 10\nend\n", "usage: clock"},
		{"bad conn", "design d\ninst i INV_X1 A\nend\n", "bad connection"},
		{"dup pin conn", "design d\ninst i INV_X1 A=x A=y\nend\n", "connected twice"},
		{"unknown directive", "design d\nfoo bar\nend\n", "unknown directive"},
		{"nested module", "design d\nmodule a\nmodule b\nendmodule\nendmodule\nend\n", "nested module"},
		{"stray endmodule", "design d\nendmodule\nend\n", "outside module"},
		{"clock in module", "design d\nmodule m\nclock c period 10 rise 0 fall 5\nendmodule\nend\n", "clock inside module"},
		{"timed module port", "design d\nmodule m\ninput A clock c edge rise offset 0\nendmodule\nend\n", "timing reference"},
		{"content after end", "design d\nend\ninst i INV_X1 A=x\n", "content after"},
		{"empty design", "", "no design"},
		{"bad edge", "design d\nclock c period 10 rise 0 fall 5\ninput A clock c edge sideways offset 0\nend\n", "bad edge"},
	}
	for _, c := range cases {
		_, err := ParseString(c.text)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	d, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\ntext:\n%s", err, sb.String())
	}
	if d2.Name != d.Name || len(d2.Instances) != len(d.Instances) ||
		len(d2.Clocks) != len(d.Clocks) || len(d2.Ports) != len(d.Ports) ||
		len(d2.Modules) != len(d.Modules) {
		t.Fatalf("round trip shape mismatch:\n%s", sb.String())
	}
	for i, inst := range d.Instances {
		got := d2.Instances[i]
		if got.Name != inst.Name || got.Ref != inst.Ref || len(got.Conns) != len(inst.Conns) {
			t.Fatalf("instance %d mismatch: %+v vs %+v", i, got, inst)
		}
		for pin, net := range inst.Conns {
			if got.Conns[pin] != net {
				t.Fatalf("instance %s pin %s: %q vs %q", inst.Name, pin, got.Conns[pin], net)
			}
		}
	}
}

func TestInstancesSortedByName(t *testing.T) {
	d := smallDesign()
	sorted := d.InstancesSortedByName()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name >= sorted[i].Name {
			t.Fatal("not sorted")
		}
	}
	// Original order untouched.
	if d.Instances[0].Name != "g1" {
		t.Fatal("original mutated")
	}
}

func TestPortDirString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Fatal("PortDir strings")
	}
}

func TestClockNames(t *testing.T) {
	d := smallDesign()
	names := d.ClockNames()
	if len(names) != 2 || names[0] != "phi1" || names[1] != "phi2" {
		t.Fatalf("ClockNames = %v", names)
	}
}
