// Package octdb is the repository's stand-in for the OCT design database
// the original Hummingbird interfaced with (§1, §8): a property store over
// design objects (the design itself, nets, instances, ports) with textual
// save/load, plus the §8 "flag all slow paths" operation whose annotations
// a layout viewer (VEM in the original flow) would display.
package octdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hummingbird/internal/core"
	"hummingbird/internal/failpoint"
	"hummingbird/internal/netlist"
)

// ObjKind classifies the objects properties attach to.
type ObjKind uint8

const (
	// DesignObj is the design itself (object name ignored).
	DesignObj ObjKind = iota
	// NetObj is a net.
	NetObj
	// InstObj is an instance.
	InstObj
	// PortObj is a primary port.
	PortObj
)

var kindNames = map[ObjKind]string{
	DesignObj: "design", NetObj: "net", InstObj: "inst", PortObj: "port",
}

func (k ObjKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ObjKind(%d)", uint8(k))
}

// Value is a typed property value (OCT supported typed properties; string
// and integer cover the analyzer's needs).
type Value struct {
	Str   string
	Int   int64
	IsInt bool
}

// StringValue wraps a string property value.
func StringValue(s string) Value { return Value{Str: s} }

// IntValue wraps an integer property value.
func IntValue(i int64) Value { return Value{Int: i, IsInt: true} }

func (v Value) String() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return v.Str
}

type key struct {
	kind ObjKind
	obj  string
	name string
}

// DB binds a design to its attached properties.
type DB struct {
	Design *netlist.Design
	props  map[key]Value
}

// New creates an empty property store over a design.
func New(d *netlist.Design) *DB {
	return &DB{Design: d, props: map[key]Value{}}
}

// Set attaches (or replaces) a property.
func (db *DB) Set(kind ObjKind, obj, name string, v Value) {
	db.props[key{kind, obj, name}] = v
}

// Get returns a property and whether it exists.
func (db *DB) Get(kind ObjKind, obj, name string) (Value, bool) {
	v, ok := db.props[key{kind, obj, name}]
	return v, ok
}

// Delete removes a property; deleting a missing property is a no-op.
func (db *DB) Delete(kind ObjKind, obj, name string) {
	delete(db.props, key{kind, obj, name})
}

// Len returns the number of attached properties.
func (db *DB) Len() int { return len(db.props) }

// ObjectsWith returns the object names of the given kind carrying the named
// property, sorted.
func (db *DB) ObjectsWith(kind ObjKind, name string) []string {
	var out []string
	for k := range db.props {
		if k.kind == kind && k.name == name {
			out = append(out, k.obj)
		}
	}
	sort.Strings(out)
	return out
}

// ClearPrefix removes every property whose name starts with the prefix;
// used to drop stale analysis annotations before re-flagging.
func (db *DB) ClearPrefix(prefix string) {
	for k := range db.props {
		if strings.HasPrefix(k.name, prefix) {
			delete(db.props, k)
		}
	}
}

// Timing-annotation property names.
const (
	PropSlowPath  = "hb.slowPath"  // net/inst: member of a too-slow path
	PropSlack     = "hb.slackPs"   // net: worst slack in picoseconds
	PropVerdict   = "hb.verdict"   // design: "ok" or "slow"
	PropWorst     = "hb.worstPs"   // design: worst slack in picoseconds
	PropSlowCount = "hb.slowPaths" // design: number of traced slow paths
)

// FlagSlowPaths attaches the §8 slow-path annotations: every net and
// instance on a traced slow path is marked, per-net worst slacks are
// recorded, and the design carries the verdict. Stale annotations are
// cleared first.
func FlagSlowPaths(db *DB, a *core.Analyzer, rep *core.Report) {
	db.ClearPrefix("hb.")
	verdict := "ok"
	if !rep.OK {
		verdict = "slow"
	}
	db.Set(DesignObj, "", PropVerdict, StringValue(verdict))
	db.Set(DesignObj, "", PropWorst, IntValue(int64(rep.WorstSlack())))
	db.Set(DesignObj, "", PropSlowCount, IntValue(int64(len(rep.SlowPaths))))
	for n, s := range rep.Result.NetSlack {
		if s <= 0 {
			db.Set(NetObj, a.CD.Nets[n], PropSlack, IntValue(int64(s)))
		}
	}
	for _, p := range rep.SlowPaths {
		for _, net := range p.Nets {
			db.Set(NetObj, a.CD.Nets[net], PropSlowPath, IntValue(1))
		}
		for _, inst := range p.Insts {
			db.Set(InstObj, inst, PropSlowPath, IntValue(1))
		}
	}
}

// Save writes the property store as sorted text lines:
//
//	prop KIND OBJECT NAME TYPE VALUE
//
// Object and value fields are quoted, so arbitrary names round-trip.
func (db *DB) Save(w io.Writer) error {
	if err := failpoint.Hit("octdb.save"); err != nil {
		return err
	}
	keys := make([]key, 0, len(db.props))
	for k := range db.props {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		return a.name < b.name
	})
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		v := db.props[k]
		typ, val := "str", strconv.Quote(v.Str)
		if v.IsInt {
			typ, val = "int", strconv.FormatInt(v.Int, 10)
		}
		fmt.Fprintf(bw, "prop %s %s %s %s %s\n", k.kind, strconv.Quote(k.obj), strconv.Quote(k.name), typ, val)
	}
	return bw.Flush()
}

// Load reads properties saved by Save into the store (merging over any
// existing properties).
func (db *DB) Load(r io.Reader) error {
	if err := failpoint.Hit("octdb.load"); err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f, err := splitQuoted(text)
		if err != nil {
			return fmt.Errorf("octdb: line %d: %v", line, err)
		}
		if len(f) < 6 || f[0] != "prop" {
			return fmt.Errorf("octdb: line %d: malformed property line", line)
		}
		var kind ObjKind
		switch f[1] {
		case "design":
			kind = DesignObj
		case "net":
			kind = NetObj
		case "inst":
			kind = InstObj
		case "port":
			kind = PortObj
		default:
			return fmt.Errorf("octdb: line %d: unknown object kind %q", line, f[1])
		}
		obj, err := strconv.Unquote(f[2])
		if err != nil {
			return fmt.Errorf("octdb: line %d: bad object: %v", line, err)
		}
		name, err := strconv.Unquote(f[3])
		if err != nil {
			return fmt.Errorf("octdb: line %d: bad name: %v", line, err)
		}
		rest := f[5]
		switch f[4] {
		case "int":
			i, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return fmt.Errorf("octdb: line %d: bad int: %v", line, err)
			}
			db.Set(kind, obj, name, IntValue(i))
		case "str":
			s, err := strconv.Unquote(rest)
			if err != nil {
				return fmt.Errorf("octdb: line %d: bad string: %v", line, err)
			}
			db.Set(kind, obj, name, StringValue(s))
		default:
			return fmt.Errorf("octdb: line %d: unknown type %q", line, f[4])
		}
	}
	return sc.Err()
}

// splitQuoted splits a line into whitespace-separated tokens, keeping
// Go-quoted strings (including any whitespace and escapes inside) as single
// tokens with their quotes intact.
func splitQuoted(s string) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated quote")
			}
			out = append(out, s[i:j+1])
			i = j + 1
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	return out, nil
}
