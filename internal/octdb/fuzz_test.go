package octdb

import (
	"strings"
	"testing"

	"hummingbird/internal/netlist"
)

// FuzzLoad checks the property-file loader never panics and that anything
// it accepts saves and reloads identically.
func FuzzLoad(f *testing.F) {
	f.Add(`prop net "n1" "hb.slackPs" int -5`)
	f.Add(`prop design "" "hb.verdict" str "ok"`)
	f.Add(`prop inst "g \"x\"" "note" str "a b c"`)
	f.Add("# comment\n\nprop port \"P\" \"k\" int 7")
	f.Add(`prop net "unterminated`)
	f.Fuzz(func(t *testing.T, text string) {
		db := New(netlist.New("d"))
		if err := db.Load(strings.NewReader(text)); err != nil {
			return
		}
		var sb strings.Builder
		if err := db.Save(&sb); err != nil {
			t.Fatal(err)
		}
		db2 := New(netlist.New("d"))
		if err := db2.Load(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed property count: %d vs %d", db2.Len(), db.Len())
		}
	})
}
