package octdb

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
)

func TestSetGetDelete(t *testing.T) {
	db := New(netlist.New("d"))
	if _, ok := db.Get(NetObj, "n1", "x"); ok {
		t.Fatal("phantom property")
	}
	db.Set(NetObj, "n1", "x", IntValue(5))
	v, ok := db.Get(NetObj, "n1", "x")
	if !ok || !v.IsInt || v.Int != 5 {
		t.Fatalf("get = %+v %v", v, ok)
	}
	// Same name on a different kind is a different property.
	if _, ok := db.Get(InstObj, "n1", "x"); ok {
		t.Fatal("kind collision")
	}
	db.Set(NetObj, "n1", "x", StringValue("hi"))
	v, _ = db.Get(NetObj, "n1", "x")
	if v.IsInt || v.Str != "hi" {
		t.Fatal("overwrite failed")
	}
	db.Delete(NetObj, "n1", "x")
	if _, ok := db.Get(NetObj, "n1", "x"); ok {
		t.Fatal("delete failed")
	}
	db.Delete(NetObj, "n1", "x") // no-op
	if db.Len() != 0 {
		t.Fatal("len wrong")
	}
}

func TestObjectsWithAndClearPrefix(t *testing.T) {
	db := New(netlist.New("d"))
	db.Set(NetObj, "b", "hb.slowPath", IntValue(1))
	db.Set(NetObj, "a", "hb.slowPath", IntValue(1))
	db.Set(InstObj, "g", "hb.slowPath", IntValue(1))
	db.Set(NetObj, "c", "other", IntValue(1))
	got := db.ObjectsWith(NetObj, "hb.slowPath")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("ObjectsWith = %v", got)
	}
	db.ClearPrefix("hb.")
	if db.Len() != 1 {
		t.Fatalf("ClearPrefix left %d", db.Len())
	}
	if _, ok := db.Get(NetObj, "c", "other"); !ok {
		t.Fatal("unrelated property cleared")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(netlist.New("d"))
	db.Set(DesignObj, "", "hb.verdict", StringValue("slow"))
	db.Set(NetObj, "weird net \"name\"", "hb.slackPs", IntValue(-123))
	db.Set(InstObj, "g1", "note", StringValue("multi word value"))
	db.Set(PortObj, "IN", "k", IntValue(7))
	var sb strings.Builder
	if err := db.Save(&sb); err != nil {
		t.Fatal(err)
	}
	db2 := New(netlist.New("d"))
	if err := db2.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("load: %v\n%s", err, sb.String())
	}
	if db2.Len() != db.Len() {
		t.Fatalf("len %d vs %d", db2.Len(), db.Len())
	}
	v, ok := db2.Get(NetObj, "weird net \"name\"", "hb.slackPs")
	if !ok || v.Int != -123 {
		t.Fatalf("quoted net lost: %+v %v", v, ok)
	}
	v, _ = db2.Get(InstObj, "g1", "note")
	if v.Str != "multi word value" {
		t.Fatalf("multi-word string lost: %q", v.Str)
	}
	// Save is deterministic.
	var sb2 strings.Builder
	if err := db.Save(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("nondeterministic save")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"prop bogus \"x\" \"y\" int 1",
		"prop net \"x\" \"y\" float 1.5",
		"prop net x \"y\" int 1",
		"prop net \"x\" \"y\" int abc",
		"junk line",
		"prop net \"x\" \"y\" str noquotes",
	}
	for _, c := range cases {
		db := New(netlist.New("d"))
		if err := db.Load(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Comments and blanks are fine.
	db := New(netlist.New("d"))
	if err := db.Load(strings.NewReader("# comment\n\n")); err != nil {
		t.Fatal(err)
	}
}

func TestFlagSlowPaths(t *testing.T) {
	lib := celllib.Default()
	d, err := netlist.ParseString(`
design slow
clock phi period 1ns rise 0 fall 400ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst g4 INV_X1 A=n3 Y=n4
inst f2 DFF_X1 D=n4 CK=phi Q=q2
inst g5 BUF_X1 A=q2 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("fixture should be slow at a 1ns period")
	}
	db := New(d)
	db.Set(NetObj, "stale", "hb.slowPath", IntValue(1))
	FlagSlowPaths(db, a, rep)
	if _, ok := db.Get(NetObj, "stale", "hb.slowPath"); ok {
		t.Fatal("stale annotation survived")
	}
	v, ok := db.Get(DesignObj, "", PropVerdict)
	if !ok || v.Str != "slow" {
		t.Fatalf("verdict = %+v %v", v, ok)
	}
	if nets := db.ObjectsWith(NetObj, PropSlowPath); len(nets) == 0 {
		t.Fatal("no slow nets flagged")
	}
	if insts := db.ObjectsWith(InstObj, PropSlowPath); len(insts) == 0 {
		t.Fatal("no slow instances flagged")
	}
	w, _ := db.Get(DesignObj, "", PropWorst)
	if w.Int >= 0 {
		t.Fatalf("worst slack %d not negative", w.Int)
	}
}

func TestStringers(t *testing.T) {
	if DesignObj.String() != "design" || NetObj.String() != "net" ||
		InstObj.String() != "inst" || PortObj.String() != "port" {
		t.Fatal("ObjKind strings")
	}
	if !strings.Contains(ObjKind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
	if IntValue(-3).String() != "-3" || StringValue("x").String() != "x" {
		t.Fatal("Value strings")
	}
}
