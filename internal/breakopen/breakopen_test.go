package breakopen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hummingbird/internal/clock"
)

// validPlan checks that every output is assigned a pass that applies to it.
func validPlan(t *testing.T, p *Plan, outs []Output) {
	t.Helper()
	for _, o := range outs {
		bi, ok := p.Assign[o.ID]
		if !ok {
			t.Fatalf("output %d unassigned", o.ID)
		}
		if !Applies(o, p.Breaks[bi], p.T) {
			t.Fatalf("output %d assigned non-applying pass at %v", o.ID, p.Breaks[bi])
		}
	}
}

func TestPositions(t *testing.T) {
	T := clock.Time(100)
	if AssertPos(30, 10, T) != 20 || AssertPos(5, 10, T) != 95 || AssertPos(10, 10, T) != 0 {
		t.Fatal("AssertPos wrong")
	}
	if ClosePos(30, 10, T) != 20 || ClosePos(5, 10, T) != 95 {
		t.Fatal("ClosePos wrong")
	}
	// Coincident closure maps to the window END (the D = T special case).
	if ClosePos(10, 10, T) != 100 {
		t.Fatalf("coincident ClosePos = %v, want 100", ClosePos(10, 10, T))
	}
}

func TestAppliesSameEdge(t *testing.T) {
	T := clock.Time(100)
	o := Output{ID: 0, Close: 40, Asserts: []clock.Time{40}}
	if !Applies(o, 40, T) {
		t.Fatal("break at the shared edge must apply (D = T)")
	}
	if Applies(o, 50, T) || Applies(o, 0, T) {
		t.Fatal("same-edge pair applies away from its edge")
	}
}

func TestSingleClockFFPipeline(t *testing.T) {
	// All launches and captures on one edge at t=40: one pass suffices,
	// broken exactly at the edge.
	T := clock.Time(100)
	cands := []clock.Time{0, 40}
	outs := []Output{
		{ID: 1, Close: 40, Asserts: []clock.Time{40}},
		{ID: 2, Close: 40, Asserts: []clock.Time{40}},
	}
	p, err := Solve(T, cands, outs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes() != 1 || p.Breaks[0] != 40 {
		t.Fatalf("plan = %+v", p)
	}
	validPlan(t, p, outs)
	if !p.Exhaustive {
		t.Fatal("exact search did not run")
	}
}

func TestTwoPhaseSinglePass(t *testing.T) {
	// Classic two-phase latch pipeline: phi1 [0,20), phi2 [50,70), T=100.
	// Paths phi1->phi2 (a=0, c=70) and phi2->phi1 (a=50, c=20).
	T := clock.Time(100)
	cands := []clock.Time{0, 20, 50, 70}
	outs := []Output{
		{ID: 1, Close: 70, Asserts: []clock.Time{0}},  // zone [70, 70+30]
		{ID: 2, Close: 20, Asserts: []clock.Time{50}}, // zone [20, 50]
	}
	p, err := Solve(T, cands, outs)
	if err != nil {
		t.Fatal(err)
	}
	// Zones [70,0] and [20,50] share... [70,100)∪[0,0] vs [20,50]: the
	// candidates in zone1 = {70, 0}; zone2 = {20, 50}. Disjoint -> 2 passes.
	if p.Passes() != 2 {
		t.Fatalf("passes = %d, want 2 (%+v)", p.Passes(), p)
	}
	validPlan(t, p, outs)
}

// TestFigure1TwoPasses reproduces the Figure 1 configuration: a logic gate
// whose inputs come from latches on phi1 and phi3 and whose output is
// captured by latches on phi2 and phi4 (four equally spaced phases). The
// gate is "time multiplexed within each overall clock period": its output
// must settle twice, and the minimum number of analysis passes is 2.
func TestFigure1TwoPasses(t *testing.T) {
	cs, err := clock.MultiPhase(4, 200, 30)
	if err != nil {
		t.Fatal(err)
	}
	T := cs.Overall()
	var cands []clock.Time
	for _, e := range cs.Edges() {
		cands = append(cands, e.At)
	}
	// Latch on phi_i is transparent on [50(i-1), 50(i-1)+30): assertion at
	// lead, closure at trail.
	outs := []Output{
		{ID: 1, Close: 80, Asserts: []clock.Time{0, 100}},  // capture on phi2.trail
		{ID: 2, Close: 180, Asserts: []clock.Time{0, 100}}, // capture on phi4.trail
	}
	p, err := Solve(T, cands, outs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes() != 2 {
		t.Fatalf("Figure 1 needs 2 passes, got %d (%+v)", p.Passes(), p)
	}
	validPlan(t, p, outs)
	// The two outputs land in different passes.
	if p.Assign[1] == p.Assign[2] {
		t.Fatalf("outputs share a pass: %+v", p.Assign)
	}
	lb, err := MinPassesLowerBound(T, cands, outs)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 2 {
		t.Fatalf("lower bound = %d, want 2", lb)
	}
}

// TestFigure4Example mirrors the Figure 4 discussion: eight edge times
// A..H; the requirement "edge E occurs before edge C" (a path asserted at E
// and closed at C) is satisfied by breaking the circle at the original arc
// D→E — in our encoding, by the window start at E's time — giving the order
// E F G H A B C D.
func TestFigure4Example(t *testing.T) {
	T := clock.Time(800)
	// A=0 B=100 ... H=700.
	names := "ABCDEFGH"
	at := func(ch byte) clock.Time { return clock.Time(100 * int64(indexOf(names, ch))) }
	cands := make([]clock.Time, 0, 8)
	for i := range names {
		cands = append(cands, at(names[i]))
	}
	o := Output{ID: 1, Close: at('C'), Asserts: []clock.Time{at('E')}}
	// Window starting at E: E F G H A B C D — E before C.
	if !Applies(o, at('E'), T) {
		t.Fatal("break at E (removal of arc D→E) must satisfy E-before-C")
	}
	// Window starting at F: F..E — C appears before E: does not apply.
	if Applies(o, at('F'), T) {
		t.Fatal("break at F should not satisfy E-before-C")
	}
	// Zone is the cyclic interval [C, E]: breaks at C, D, E only.
	for i := range names {
		beta := at(names[i])
		want := names[i] == 'C' || names[i] == 'D' || names[i] == 'E'
		if got := Applies(o, beta, T); got != want {
			t.Errorf("Applies at %c = %v, want %v", names[i], got, want)
		}
	}
	p, err := Solve(T, cands, []Output{o})
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes() != 1 {
		t.Fatalf("single requirement needs one pass, got %d", p.Passes())
	}
	// Assignment prefers the window placing C closest to the end: break C.
	if p.Breaks[p.Assign[1]] != at('C') {
		t.Fatalf("assigned break %v, want C=%v", p.Breaks[p.Assign[1]], at('C'))
	}
}

func indexOf(s string, ch byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ch {
			return i
		}
	}
	return -1
}

func TestOutputWithNoInputs(t *testing.T) {
	T := clock.Time(100)
	outs := []Output{{ID: 7, Close: 30}}
	p, err := Solve(T, []clock.Time{0, 30, 60}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes() != 1 {
		t.Fatalf("passes = %d", p.Passes())
	}
	validPlan(t, p, outs)
}

func TestNoOutputs(t *testing.T) {
	p, err := Solve(100, []clock.Time{0, 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes() != 0 || len(p.Assign) != 0 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Solve(0, []clock.Time{0}, nil); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Solve(100, nil, nil); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := Solve(100, []clock.Time{120}, nil); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
	if _, err := Solve(100, []clock.Time{0}, []Output{{ID: 1, Close: 120}}); err == nil {
		t.Fatal("out-of-range closure accepted")
	}
	// Closure not among candidates.
	if _, err := Solve(100, []clock.Time{0}, []Output{{ID: 1, Close: 50}}); err == nil {
		t.Fatal("non-candidate closure accepted")
	}
	// Greedy: a same-edge pair whose only applying break (its own edge) is
	// not a candidate is unsatisfiable.
	if _, err := SolveGreedy(100, []clock.Time{0}, []Output{{ID: 1, Close: 50, Asserts: []clock.Time{50}}}); err == nil {
		t.Fatal("greedy: unsatisfiable output accepted")
	}
}

func TestThreeDisjointZones(t *testing.T) {
	T := clock.Time(300)
	cands := []clock.Time{0, 50, 100, 150, 200, 250}
	outs := []Output{
		{ID: 1, Close: 0, Asserts: []clock.Time{50}},    // zone [0,50]
		{ID: 2, Close: 100, Asserts: []clock.Time{150}}, // zone [100,150]
		{ID: 3, Close: 200, Asserts: []clock.Time{250}}, // zone [200,250]
	}
	p, err := Solve(T, cands, outs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes() != 3 {
		t.Fatalf("passes = %d, want 3", p.Passes())
	}
	validPlan(t, p, outs)
}

// bruteForceMin finds the true minimum cover size by trying every subset.
func bruteForceMin(T clock.Time, cands []clock.Time, outs []Output) int {
	n := len(cands)
	best := n + 1
	for mask := 1; mask < 1<<uint(n); mask++ {
		ok := true
		for _, o := range outs {
			hit := false
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 && Applies(o, cands[i], T) {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			size := 0
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					size++
				}
			}
			if size < best {
				best = size
			}
		}
	}
	return best
}

// Property: the exhaustive solver matches the brute-force optimum, the plan
// is valid, and greedy never beats the optimum.
func TestSolveOptimalProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		T := clock.Time(40 + 10*r.Intn(20))
		nc := 2 + r.Intn(6)
		candSet := map[clock.Time]bool{}
		for len(candSet) < nc {
			candSet[clock.Time(r.Intn(int(T)))] = true
		}
		var cands []clock.Time
		for c := range candSet {
			cands = append(cands, c)
		}
		no := 1 + r.Intn(5)
		outs := make([]Output, no)
		for i := range outs {
			c := cands[r.Intn(len(cands))]
			na := 1 + r.Intn(3)
			as := make([]clock.Time, na)
			for j := range as {
				as[j] = cands[r.Intn(len(cands))]
			}
			outs[i] = Output{ID: i, Close: c, Asserts: as}
		}
		p, err := Solve(T, cands, outs)
		if err != nil {
			return false
		}
		for _, o := range outs {
			bi, ok := p.Assign[o.ID]
			if !ok || !Applies(o, p.Breaks[bi], T) {
				return false
			}
		}
		want := bruteForceMin(T, cands, outs)
		if want <= maxExactBreaks && p.Passes() != want {
			return false
		}
		g, err := SolveGreedy(T, cands, outs)
		if err != nil {
			return false
		}
		if g.Passes() < want {
			return false
		}
		lb, err := MinPassesLowerBound(T, cands, outs)
		if err != nil || lb > want {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the assigned pass places the output's closure at least as close
// to the window end as any other applying chosen pass.
func TestAssignmentClosestToEnd(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		T := clock.Time(60 + 10*r.Intn(10))
		cands := []clock.Time{}
		for v := clock.Time(0); v < T; v += 10 {
			cands = append(cands, v)
		}
		outs := make([]Output, 4)
		for i := range outs {
			outs[i] = Output{
				ID:    i,
				Close: cands[r.Intn(len(cands))],
				Asserts: []clock.Time{
					cands[r.Intn(len(cands))], cands[r.Intn(len(cands))],
				},
			}
		}
		p, err := Solve(T, cands, outs)
		if err != nil {
			return false
		}
		for _, o := range outs {
			got := ClosePos(o.Close, p.Breaks[p.Assign[o.ID]], T)
			for _, beta := range p.Breaks {
				if Applies(o, beta, T) && ClosePos(o.Close, beta, T) > got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the effective path constraint D = posC(c) − posA(a) is the
// same in every window that orders a before c — the choice of applying
// pass never changes a path's constraint, only which outputs are evaluated.
func TestPathConstraintWindowInvariant(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		T := clock.Time(50 + r.Intn(200))
		a := clock.Time(r.Intn(int(T)))
		c := clock.Time(r.Intn(int(T)))
		o := Output{ID: 0, Close: c, Asserts: []clock.Time{a}}
		var ref clock.Time = -1
		for beta := clock.Time(0); beta < T; beta++ {
			if !Applies(o, beta, T) {
				continue
			}
			d := ClosePos(c, beta, T) - AssertPos(a, beta, T)
			if d <= 0 || d > T {
				return false // D must lie in (0, T] (§4)
			}
			if ref == -1 {
				ref = d
			} else if d != ref {
				return false
			}
		}
		return ref != -1 // at least the break at c applies
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctZones(t *testing.T) {
	// Supersets are dropped; duplicates collapse.
	zs := []uint64{0b111, 0b101, 0b101, 0b100}
	ds := distinctZones(zs)
	if len(ds) != 1 || ds[0] != 0b100 {
		t.Fatalf("distinct zones = %b", ds)
	}
	zs2 := []uint64{0b011, 0b110}
	ds2 := distinctZones(zs2)
	if len(ds2) != 2 {
		t.Fatalf("incomparable zones collapsed: %b", ds2)
	}
}

func TestGreedyMatchesOnEasyCases(t *testing.T) {
	T := clock.Time(100)
	cands := []clock.Time{0, 25, 50, 75}
	outs := []Output{
		{ID: 1, Close: 0, Asserts: []clock.Time{50}},
		{ID: 2, Close: 25, Asserts: []clock.Time{50}},
	}
	// Zones: [0,50] and [25,50]; one break at 25 or 50 covers both.
	p, _ := Solve(T, cands, outs)
	g, _ := SolveGreedy(T, cands, outs)
	if p.Passes() != 1 || g.Passes() != 1 {
		t.Fatalf("passes exact=%d greedy=%d", p.Passes(), g.Passes())
	}
	if g.Exhaustive {
		t.Fatal("greedy plan mislabelled")
	}
}
