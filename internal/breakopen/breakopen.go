// Package breakopen implements the pre-processing stage of §7: deciding how
// many block-analysis passes each combinational cluster needs, where to
// "break open" the clock period for each pass, and which pass applies to
// each cluster output — such that the *minimum* number of settling times is
// computed per node (the paper's headline new feature).
//
// # Model
//
// The clock edges of one overall period T form a circle (the directed graph
// of Figure 4: each original arc connects consecutive edge times). Breaking
// the period open means removing one original arc; the resulting window
// starts at the removed arc's head edge. We therefore identify each break
// candidate with a window start time β — the time of a clock edge — and use
// the half-open conventions
//
//	assertion position  posA(a) = (a − β) mod T           ∈ [0, T)
//	closure   position  posC(c) = T if c ≡ β, else (c − β) mod T   ∈ (0, T]
//
// so that a closure edge coinciding with the window start maps to the *end*
// of the window. A same-edge launch/capture pair (FF→FF on one clock) then
// naturally yields the §4 special case D = exactly one overall period.
//
// # Requirements
//
// A pass with window start β applies to cluster output o (closure edge time
// c, feeding assertion edge times a_j) iff posA(a_j) < posC(c) for every j.
// Working out the cyclic arithmetic, this holds exactly when β lies within
// cyclic forward distance dmin = min_j((a_j − c) mod T) of c: the zone of o
// is the cyclic interval [c, c+dmin]. (An input asserted on the closure edge
// itself gives dmin = 0: only the break exactly at c applies, the D = T
// case.) The minimum pass set is a minimum hitting set of these circular
// intervals over the break candidates; following the paper we find it by
// exhaustive search over sets of size 1, 2, … ("we try all possible pairs,
// and so on"), with a greedy set cover available for comparison (and as a
// fallback for degenerate inputs needing very many passes).
package breakopen

import (
	"fmt"
	"math/bits"
	"sort"

	"hummingbird/internal/clock"
)

// Output describes one cluster output (one closure occurrence): its ideal
// closure edge time and the ideal assertion edge times of every cluster
// input occurrence from which a combinational path reaches it.
type Output struct {
	// ID is the caller's identifier, echoed in the Plan's assignment.
	ID int
	// Close is the ideal closure time, in [0, T); it must be one of the
	// break candidates (it is a clock edge time by construction).
	Close clock.Time
	// Asserts are the ideal assertion times of the feeding inputs, each in
	// [0, T). An output with no feeding inputs is trivially satisfied by
	// every pass.
	Asserts []clock.Time
}

// Plan is the chosen set of analysis passes for one cluster.
type Plan struct {
	// T is the overall clock period.
	T clock.Time
	// Breaks lists the chosen window start times, sorted ascending. One
	// block-analysis pass is run per entry.
	Breaks []clock.Time
	// Assign maps each output ID to the index within Breaks of the pass
	// that applies to it and places its closure nearest the window end.
	Assign map[int]int
	// Exhaustive records whether the exact search produced the plan
	// (false: greedy fallback).
	Exhaustive bool
}

// Passes returns the number of analysis passes.
func (p *Plan) Passes() int { return len(p.Breaks) }

// AssertPos maps an assertion edge time into the window starting at break β.
func AssertPos(a, beta, T clock.Time) clock.Time {
	return modT(a-beta, T)
}

// ClosePos maps a closure edge time into the window starting at break β,
// with the coincident edge mapped to the window end (position T).
func ClosePos(c, beta, T clock.Time) clock.Time {
	d := modT(c-beta, T)
	if d == 0 {
		return T
	}
	return d
}

// Applies reports whether the pass with window start beta applies to the
// output: every feeding assertion strictly precedes the closure position.
func Applies(o Output, beta, T clock.Time) bool {
	pc := ClosePos(o.Close, beta, T)
	for _, a := range o.Asserts {
		if AssertPos(a, beta, T) >= pc {
			return false
		}
	}
	return true
}

func modT(t, T clock.Time) clock.Time {
	r := t % T
	if r < 0 {
		r += T
	}
	return r
}

// maxExactBreaks bounds the exhaustive search depth; the paper observes
// "very seldom is it necessary to remove more than two arcs", so four is
// already generous. Beyond it we fall back to greedy set cover.
const maxExactBreaks = 4

// Solve computes the minimum set of analysis passes. candidates are the
// available window start times (the distinct clock edge times of the
// overall period, in any order); T is the overall period.
func Solve(T clock.Time, candidates []clock.Time, outs []Output) (*Plan, error) {
	cands, err := prepCandidates(T, candidates)
	if err != nil {
		return nil, err
	}
	if len(cands) > 64 {
		// The bitmask-based exact search tops out at 64 candidates; such
		// clocking schemes are far beyond the paper's scope. Go greedy.
		return solveGreedyPrepared(T, cands, outs)
	}
	zones, err := zonesOf(T, cands, outs)
	if err != nil {
		return nil, err
	}
	distinct := distinctZones(zones)
	if len(distinct) == 0 {
		return &Plan{T: T, Assign: assign(T, nil, outs), Exhaustive: true}, nil
	}
	// Exhaustive search in increasing size, lexicographic candidate order
	// (candidates are sorted by time, so plans are deterministic).
	for size := 1; size <= maxExactBreaks && size <= len(cands); size++ {
		if sel := searchCover(distinct, len(cands), size); sel != nil {
			breaks := make([]clock.Time, 0, size)
			for _, ci := range sel {
				breaks = append(breaks, cands[ci])
			}
			sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })
			return &Plan{T: T, Breaks: breaks, Assign: assign(T, breaks, outs), Exhaustive: true}, nil
		}
	}
	return solveGreedyPrepared(T, cands, outs)
}

// SolveGreedy computes a pass set with greedy set cover only; it is used by
// the A3 ablation to compare against the exhaustive optimum.
func SolveGreedy(T clock.Time, candidates []clock.Time, outs []Output) (*Plan, error) {
	cands, err := prepCandidates(T, candidates)
	if err != nil {
		return nil, err
	}
	return solveGreedyPrepared(T, cands, outs)
}

func prepCandidates(T clock.Time, candidates []clock.Time) ([]clock.Time, error) {
	if T <= 0 {
		return nil, fmt.Errorf("breakopen: non-positive overall period %v", T)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("breakopen: no break candidates")
	}
	seen := map[clock.Time]bool{}
	var cands []clock.Time
	for _, c := range candidates {
		if c < 0 || c >= T {
			return nil, fmt.Errorf("breakopen: candidate %v outside [0,%v)", c, T)
		}
		if !seen[c] {
			seen[c] = true
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands, nil
}

// zonesOf computes each output's zone as a bitmask over candidate indices.
func zonesOf(T clock.Time, cands []clock.Time, outs []Output) ([]uint64, error) {
	idx := make(map[clock.Time]int, len(cands))
	for i, c := range cands {
		idx[c] = i
	}
	zones := make([]uint64, len(outs))
	for oi, o := range outs {
		if o.Close < 0 || o.Close >= T {
			return nil, fmt.Errorf("breakopen: output %d closure %v outside [0,%v)", o.ID, o.Close, T)
		}
		if _, ok := idx[o.Close]; !ok {
			return nil, fmt.Errorf("breakopen: output %d closure %v is not a break candidate", o.ID, o.Close)
		}
		var z uint64
		for ci, beta := range cands {
			if Applies(o, beta, T) {
				z |= 1 << uint(ci)
			}
		}
		if z == 0 {
			// Impossible: the break at o.Close always applies.
			return nil, fmt.Errorf("breakopen: output %d has an empty zone (internal error)", o.ID)
		}
		zones[oi] = z
	}
	return zones, nil
}

// distinctZones drops duplicate and universal-superset zones: a zone that is
// a superset of another is automatically hit whenever the subset is.
func distinctZones(zones []uint64) []uint64 {
	var ds []uint64
	for _, z := range zones {
		redundant := false
		for _, d := range ds {
			if d&z == d { // d ⊆ z: z is implied
				redundant = true
				break
			}
		}
		if redundant {
			continue
		}
		// Remove earlier zones that are supersets of z.
		kept := ds[:0]
		for _, d := range ds {
			if z&d != z {
				kept = append(kept, d)
			}
		}
		ds = append(kept, z)
	}
	return ds
}

// searchCover finds the lexicographically first candidate subset of the
// given size whose union hits every zone, or nil.
func searchCover(zones []uint64, nCands, size int) []int {
	sel := make([]int, size)
	var rec func(start, depth int, hitMask uint64) []int
	covered := func(mask uint64) bool {
		for _, z := range zones {
			if z&mask == 0 {
				return false
			}
		}
		return true
	}
	rec = func(start, depth int, mask uint64) []int {
		if depth == size {
			if covered(mask) {
				out := make([]int, size)
				copy(out, sel)
				return out
			}
			return nil
		}
		for c := start; c < nCands; c++ {
			sel[depth] = c
			if r := rec(c+1, depth+1, mask|1<<uint(c)); r != nil {
				return r
			}
		}
		return nil
	}
	return rec(0, 0, 0)
}

func solveGreedyPrepared(T clock.Time, cands []clock.Time, outs []Output) (*Plan, error) {
	// Greedy set cover over zones recomputed with Applies directly (works
	// for any candidate count).
	remaining := make([]Output, 0, len(outs))
	for _, o := range outs {
		found := false
		for _, beta := range cands {
			if Applies(o, beta, T) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("breakopen: output %d closure %v is not a break candidate", o.ID, o.Close)
		}
		remaining = append(remaining, o)
	}
	var breaks []clock.Time
	for len(remaining) > 0 {
		best, bestHit := -1, -1
		for ci, beta := range cands {
			hit := 0
			for _, o := range remaining {
				if Applies(o, beta, T) {
					hit++
				}
			}
			if hit > bestHit {
				best, bestHit = ci, hit
			}
		}
		if bestHit <= 0 {
			return nil, fmt.Errorf("breakopen: greedy cover stalled (internal error)")
		}
		beta := cands[best]
		breaks = append(breaks, beta)
		next := remaining[:0]
		for _, o := range remaining {
			if !Applies(o, beta, T) {
				next = append(next, o)
			}
		}
		remaining = next
	}
	sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })
	return &Plan{T: T, Breaks: breaks, Assign: assign(T, breaks, outs), Exhaustive: false}, nil
}

// assign maps each output to the applying pass that places its ideal
// closure time closest to the window end ("for each cluster output we find
// the broken open clock period within which its ideal closure time appears
// closest to the end", §7) — i.e. maximal ClosePos, i.e. minimal forward
// distance (β − c) mod T.
func assign(T clock.Time, breaks []clock.Time, outs []Output) map[int]int {
	m := make(map[int]int, len(outs))
	for _, o := range outs {
		best, bestDist := -1, clock.Inf
		for bi, beta := range breaks {
			if !Applies(o, beta, T) {
				continue
			}
			d := modT(beta-o.Close, T)
			if d < bestDist {
				best, bestDist = bi, d
			}
		}
		if best >= 0 {
			m[o.ID] = best
		}
	}
	return m
}

// MinPassesLowerBound returns a simple lower bound on the number of passes:
// the size of the largest set of outputs whose zones are pairwise disjoint.
// Exposed for tests and the A3 ablation report.
func MinPassesLowerBound(T clock.Time, candidates []clock.Time, outs []Output) (int, error) {
	cands, err := prepCandidates(T, candidates)
	if err != nil {
		return 0, err
	}
	if len(cands) > 64 {
		return 1, nil
	}
	zones, err := zonesOf(T, cands, outs)
	if err != nil {
		return 0, err
	}
	// Greedy pairwise-disjoint packing (a valid lower bound, not
	// necessarily the best one).
	sort.Slice(zones, func(i, j int) bool { return bits.OnesCount64(zones[i]) < bits.OnesCount64(zones[j]) })
	var used uint64
	n := 0
	for _, z := range zones {
		if z&used == 0 {
			used |= z
			n++
		}
	}
	if n == 0 && len(outs) > 0 {
		n = 1
	}
	return n, nil
}
