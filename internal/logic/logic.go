// Package logic provides three-valued (0 / 1 / X) evaluation of the
// boolean expressions that annotate library cells ("Y=!(A&B)",
// "Y=S?B:A"). The dynamic-validation simulator (internal/sim) uses it to
// compute gate outputs; the X value models unknown or not-yet-settled
// nodes, so an X captured by a latch is direct evidence of a timing
// failure.
//
// Grammar (precedence high→low): literals/identifiers/parentheses, unary
// !, &, ^, |, and the ternary S?A:B (right-associative, lowest). The
// left-hand side of "OUT=expr" names the output pin.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a three-valued logic level.
type Value uint8

const (
	// X is unknown / unsettled.
	X Value = iota
	// Zero is logic low.
	Zero
	// One is logic high.
	One
)

// String renders 0, 1 or X.
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// FromBool converts a bool to a Value.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// Not returns three-valued negation.
func Not(a Value) Value {
	switch a {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// And returns three-valued conjunction (0 dominates X).
func And(a, b Value) Value {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == One && b == One {
		return One
	}
	return X
}

// Or returns three-valued disjunction (1 dominates X).
func Or(a, b Value) Value {
	if a == One || b == One {
		return One
	}
	if a == Zero && b == Zero {
		return Zero
	}
	return X
}

// Xor returns three-valued exclusive or (any X poisons).
func Xor(a, b Value) Value {
	if a == X || b == X {
		return X
	}
	if a == b {
		return Zero
	}
	return One
}

// Mux returns s ? a : b with X-select resolution (if both branches agree
// the select doesn't matter).
func Mux(s, a, b Value) Value {
	switch s {
	case One:
		return a
	case Zero:
		return b
	default:
		if a == b {
			return a
		}
		return X
	}
}

// Expr is one parsed cell function.
type Expr struct {
	// Out is the named output pin (the left-hand side).
	Out  string
	root node
	ins  []string
}

// Inputs returns the referenced input names, sorted and deduplicated.
func (e *Expr) Inputs() []string { return e.ins }

// Eval evaluates the expression; unbound identifiers read as X.
func (e *Expr) Eval(env map[string]Value) Value { return e.root.eval(env) }

type node interface {
	eval(env map[string]Value) Value
}

type identNode string

func (n identNode) eval(env map[string]Value) Value {
	if v, ok := env[string(n)]; ok {
		return v
	}
	return X
}

type constNode Value

func (n constNode) eval(map[string]Value) Value { return Value(n) }

type notNode struct{ a node }

func (n notNode) eval(env map[string]Value) Value { return Not(n.a.eval(env)) }

type binNode struct {
	op   byte // '&', '|', '^'
	a, b node
}

func (n binNode) eval(env map[string]Value) Value {
	switch n.op {
	case '&':
		return And(n.a.eval(env), n.b.eval(env))
	case '|':
		return Or(n.a.eval(env), n.b.eval(env))
	default:
		return Xor(n.a.eval(env), n.b.eval(env))
	}
}

type muxNode struct{ s, a, b node }

func (n muxNode) eval(env map[string]Value) Value {
	return Mux(n.s.eval(env), n.a.eval(env), n.b.eval(env))
}

// Parse parses "OUT=expr".
func Parse(function string) (*Expr, error) {
	eq := strings.IndexByte(function, '=')
	if eq <= 0 {
		return nil, fmt.Errorf("logic: %q lacks an OUT= prefix", function)
	}
	out := strings.TrimSpace(function[:eq])
	p := &parser{src: function[eq+1:]}
	root, err := p.ternary()
	if err != nil {
		return nil, fmt.Errorf("logic: %q: %w", function, err)
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("logic: %q: trailing input at %q", function, p.src[p.pos:])
	}
	e := &Expr{Out: out, root: root}
	seen := map[string]bool{}
	collect(root, seen)
	for id := range seen {
		e.ins = append(e.ins, id)
	}
	sort.Strings(e.ins)
	return e, nil
}

func collect(n node, seen map[string]bool) {
	switch v := n.(type) {
	case identNode:
		seen[string(v)] = true
	case notNode:
		collect(v.a, seen)
	case binNode:
		collect(v.a, seen)
		collect(v.b, seen)
	case muxNode:
		collect(v.s, seen)
		collect(v.a, seen)
		collect(v.b, seen)
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// ternary := or ('?' ternary ':' ternary)?
func (p *parser) ternary() (node, error) {
	cond, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.peek() != '?' {
		return cond, nil
	}
	p.pos++
	a, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if p.peek() != ':' {
		return nil, fmt.Errorf("expected ':' at offset %d", p.pos)
	}
	p.pos++
	b, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return muxNode{s: cond, a: a, b: b}, nil
}

func (p *parser) or() (node, error) {
	left, err := p.xor()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		right, err := p.xor()
		if err != nil {
			return nil, err
		}
		left = binNode{op: '|', a: left, b: right}
	}
	return left, nil
}

func (p *parser) xor() (node, error) {
	left, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.peek() == '^' {
		p.pos++
		right, err := p.and()
		if err != nil {
			return nil, err
		}
		left = binNode{op: '^', a: left, b: right}
	}
	return left, nil
}

func (p *parser) and() (node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = binNode{op: '&', a: left, b: right}
	}
	return left, nil
}

func (p *parser) unary() (node, error) {
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		a, err := p.unary()
		if err != nil {
			return nil, err
		}
		return notNode{a: a}, nil
	case c == '(':
		p.pos++
		inner, err := p.ternary()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("expected ')' at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	case c == '0':
		p.pos++
		return constNode(Zero), nil
	case c == '1':
		p.pos++
		return constNode(One), nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		return identNode(p.src[start:p.pos]), nil
	case c == 0:
		return nil, fmt.Errorf("unexpected end of expression")
	default:
		return nil, fmt.Errorf("unexpected character %q at offset %d", c, p.pos)
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
