package logic

import (
	"strings"
	"testing"
	"testing/quick"

	"hummingbird/internal/celllib"
)

// mustParse wraps Parse for static, known-valid test fixtures.
func mustParse(function string) *Expr {
	e, err := Parse(function)
	if err != nil {
		panic(err)
	}
	return e
}

func env(pairs ...interface{}) map[string]Value {
	m := map[string]Value{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(Value)
	}
	return m
}

func TestPrimitives(t *testing.T) {
	if Not(Zero) != One || Not(One) != Zero || Not(X) != X {
		t.Fatal("Not")
	}
	if And(Zero, X) != Zero || And(X, One) != X || And(One, One) != One {
		t.Fatal("And")
	}
	if Or(One, X) != One || Or(X, Zero) != X || Or(Zero, Zero) != Zero {
		t.Fatal("Or")
	}
	if Xor(One, Zero) != One || Xor(One, One) != Zero || Xor(X, One) != X {
		t.Fatal("Xor")
	}
	if Mux(One, Zero, One) != Zero || Mux(Zero, Zero, One) != One {
		t.Fatal("Mux select")
	}
	if Mux(X, One, One) != One || Mux(X, One, Zero) != X {
		t.Fatal("Mux X-select")
	}
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatal("strings")
	}
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool")
	}
}

func TestParseEval(t *testing.T) {
	cases := []struct {
		fn   string
		env  map[string]Value
		want Value
	}{
		{"Y=!A", env("A", One), Zero},
		{"Y=A&B", env("A", One, "B", One), One},
		{"Y=!(A&B)", env("A", One, "B", Zero), One},
		{"Y=A|B", env("A", Zero, "B", Zero), Zero},
		{"Y=A^B", env("A", One, "B", Zero), One},
		{"Y=!(A^B)", env("A", One, "B", One), One},
		{"Y=!((A&B)|C)", env("A", One, "B", One, "C", Zero), Zero},
		{"Y=!((A|B)&C)", env("A", Zero, "B", Zero, "C", One), One},
		{"Y=S?B:A", env("S", One, "A", Zero, "B", One), One},
		{"Y=S?B:A", env("S", Zero, "A", Zero, "B", One), Zero},
		{"Y=A&1", env("A", One), One},
		{"Y=A|0", env("A", Zero), Zero},
		// Precedence: & binds tighter than ^ binds tighter than |.
		{"Y=A|B&C", env("A", Zero, "B", One, "C", Zero), Zero},
		{"Y=A^B&C", env("A", One, "B", One, "C", Zero), One},
		// Unbound identifiers read X.
		{"Y=A&B", env("A", One), X},
		{"Y=A&B", env("A", Zero), Zero},
	}
	for _, c := range cases {
		e, err := Parse(c.fn)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.fn, err)
			continue
		}
		if got := e.Eval(c.env); got != c.want {
			t.Errorf("%q %v = %v, want %v", c.fn, c.env, got, c.want)
		}
	}
}

func TestParseOutAndInputs(t *testing.T) {
	e := mustParse("Y=!((A&B)|C)")
	if e.Out != "Y" {
		t.Fatalf("Out = %q", e.Out)
	}
	ins := e.Inputs()
	if len(ins) != 3 || ins[0] != "A" || ins[1] != "B" || ins[2] != "C" {
		t.Fatalf("Inputs = %v", ins)
	}
	// Duplicates deduplicate.
	e2 := mustParse("Q=D&D")
	if len(e2.Inputs()) != 1 || e2.Inputs()[0] != "D" {
		t.Fatalf("Inputs = %v", e2.Inputs())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "A", "=A", "Y=", "Y=(A", "Y=A)", "Y=A&&B", "Y=A?B", "Y=A?B:",
		"Y=@", "Y=A B",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestDefaultLibraryFunctionsParse: every combinational cell of the default
// library carries a parsable function whose inputs match its data pins —
// the contract the simulator relies on.
func TestDefaultLibraryFunctionsParse(t *testing.T) {
	lib := celllib.Default()
	for _, name := range lib.Names() {
		c := lib.Cell(name)
		if c.IsSync() {
			continue
		}
		e, err := Parse(c.Function)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if e.Out != c.Outputs()[0] {
			t.Errorf("%s: function output %q != pin %q", name, e.Out, c.Outputs()[0])
		}
		pins := map[string]bool{}
		for _, p := range c.Inputs() {
			pins[p] = true
		}
		for _, in := range e.Inputs() {
			if !pins[in] {
				t.Errorf("%s: function references unknown pin %q", name, in)
			}
		}
	}
}

// Property: X-monotonicity — refining an X input to 0 or 1 never flips a
// determined output, only (possibly) determines an X one.
func TestXMonotonicity(t *testing.T) {
	exprs := []*Expr{
		mustParse("Y=!(A&B)"), mustParse("Y=A^B"), mustParse("Y=!((A|B)&C)"),
		mustParse("Y=S?B:A"), mustParse("Y=!((A&B)|C)"),
	}
	vals := []Value{X, Zero, One}
	check := func(sel uint8, a, b, c, s uint8, refineIdx uint8, refineTo bool) bool {
		e := exprs[int(sel)%len(exprs)]
		envBase := map[string]Value{
			"A": vals[a%3], "B": vals[b%3], "C": vals[c%3], "S": vals[s%3],
		}
		before := e.Eval(envBase)
		// Refine one X input.
		names := []string{"A", "B", "C", "S"}
		name := names[int(refineIdx)%4]
		if envBase[name] != X {
			return true
		}
		envBase[name] = FromBool(refineTo)
		after := e.Eval(envBase)
		if before == X {
			return true // anything goes
		}
		return after == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWhitespaceTolerated(t *testing.T) {
	e, err := Parse("Y = ! ( A & B )")
	if err != nil {
		t.Fatal(err)
	}
	if e.Eval(env("A", One, "B", One)) != Zero {
		t.Fatal("eval")
	}
	if !strings.Contains(strings.Join(e.Inputs(), ","), "A") {
		t.Fatal("inputs")
	}
}
