package sta

import (
	"reflect"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/cluster"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/netlist"
	"hummingbird/internal/workload"
)

// mustGen unwraps a workload generator; the fixture configurations are
// static and valid by construction.
func mustGen(d *netlist.Design, err error) *netlist.Design {
	if err != nil {
		panic(err)
	}
	return d
}

func buildWorkload(t *testing.T, d *netlist.Design) *cluster.Network {
	t.Helper()
	lib := celllib.Default()
	if len(d.Modules) > 0 {
		var err error
		lib, err = delaycalc.RollUpModules(lib, d, delaycalc.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	cs, err := d.ClockSet()
	if err != nil {
		t.Fatal(err)
	}
	calc, err := delaycalc.New(lib, d, delaycalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := cluster.Build(lib, d, cs, calc)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestAnalyzeParallelEquivalence: the parallel analysis must agree with the
// sequential one bit for bit, including the pass-detail ordering.
func TestAnalyzeParallelEquivalence(t *testing.T) {
	nw := buildWorkload(t, mustGen(workload.ALU()))
	cd := cluster.Compile(nw)
	st := NewState(cd)
	seq := Analyze(cd, st)
	for _, workers := range []int{1, 2, 4, 8} {
		par := AnalyzeParallel(cd, st, workers)
		for i := range seq.InSlack {
			if par.InSlack[i] != seq.InSlack[i] || par.OutSlack[i] != seq.OutSlack[i] {
				t.Fatalf("workers=%d: element %d slacks differ", workers, i)
			}
		}
		for n := range seq.NetSlack {
			if par.NetSlack[n] != seq.NetSlack[n] {
				t.Fatalf("workers=%d: net %d slack differs", workers, n)
			}
		}
		if len(par.Passes) != len(seq.Passes) {
			t.Fatalf("workers=%d: pass count %d vs %d", workers, len(par.Passes), len(seq.Passes))
		}
		for p := range seq.Passes {
			a, b := &seq.Passes[p], &par.Passes[p]
			if a.Cluster != b.Cluster || a.Pass != b.Pass || a.Beta != b.Beta {
				t.Fatalf("workers=%d: pass %d identity differs", workers, p)
			}
			for i := range a.ReadyR {
				if a.ReadyR[i] != b.ReadyR[i] || a.ReqF[i] != b.ReqF[i] {
					t.Fatalf("workers=%d: pass %d detail differs", workers, p)
				}
			}
		}
	}
}

// TestAnalyzeParallelAllWorkloads: every benchmark workload, at every
// worker count, must produce a Result deeply identical to the sequential
// analysis — slacks, net slacks, and the full pass-detail ordering. Run
// under -race this also exercises the worker pool for data races.
func TestAnalyzeParallelAllWorkloads(t *testing.T) {
	designs := []*netlist.Design{
		mustGen(workload.DES()), mustGen(workload.ALU()),
		workload.SM1F(), workload.SM1H(), workload.Figure1(),
	}
	for _, d := range designs {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nw := buildWorkload(t, d)
			cd := cluster.Compile(nw)
			st := NewState(cd)
			seq := Analyze(cd, st)
			for _, workers := range []int{1, 2, 8} {
				par := AnalyzeParallel(cd, st, workers)
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("workers=%d: parallel result differs from sequential", workers)
				}
			}
		})
	}
}

func TestAnalyzeParallelSingleClusterFallback(t *testing.T) {
	nw := buildWorkload(t, workload.SM1F())
	// SM1F is a single cluster: the parallel path falls back to Analyze.
	cd := cluster.Compile(nw)
	st := NewState(cd)
	seq := Analyze(cd, st)
	par := AnalyzeParallel(cd, st, 8)
	if seq.WorstSlack() != par.WorstSlack() {
		t.Fatal("fallback differs")
	}
}
