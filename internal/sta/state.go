package sta

import (
	"sync"

	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
)

// AnalysisState is the mutable half of an analysis: the per-element offset
// vector Algorithm 1 moves, plus reusable scratch arenas. One state belongs
// to one analysis session at a time; the CompiledDesign it references is
// shared read-only. States are cheap — a parked session keeps only its
// state while the compiled design stays cached.
type AnalysisState struct {
	cd *cluster.CompiledDesign

	// Odz[e] is element e's current degree-of-freedom offset (the paper's
	// Odz; see syncelem). All analysis kernels read offsets from here, never
	// from the shared syncelem.Element structs.
	Odz []clock.Time

	// scratch pools per-cluster ready/required arenas: each item is one
	// []clock.Time of 4×MaxClusterNets, sliced into the four views by
	// analyzeCluster. A sync.Pool keeps AnalyzeParallel workers from
	// contending on a single buffer.
	scratch sync.Pool

	// dirty/dirtyIDs are the reusable cluster bitset of recompute, so
	// incremental sweeps stop allocating on the hot path.
	dirty []uint64
}

// NewState returns a fresh analysis state at the design's initial offsets.
func NewState(cd *cluster.CompiledDesign) *AnalysisState {
	st := &AnalysisState{
		cd:    cd,
		Odz:   make([]clock.Time, len(cd.Elems)),
		dirty: make([]uint64, (len(cd.Network.Clusters)+63)/64),
	}
	scratchLen := 4 * cd.MaxClusterNets
	st.scratch.New = func() any {
		buf := make([]clock.Time, scratchLen)
		return &buf
	}
	copy(st.Odz, cd.InitialOdz)
	return st
}

// Design returns the compiled design this state analyzes.
func (st *AnalysisState) Design() *cluster.CompiledDesign { return st.cd }

// Rebind repoints the state at a copy-on-write twin of its design (same
// element set, cluster count and scratch sizing — only arc delays differ).
// Used when an engine unshares a shared compiled design.
func (st *AnalysisState) Rebind(cd *cluster.CompiledDesign) { st.cd = cd }

// Reset restores every offset to the design's initial value (latest legal
// closure for elements with a degree of freedom).
func (st *AnalysisState) Reset() { copy(st.Odz, st.cd.InitialOdz) }

// SnapshotOffsets copies the current offset vector into dst, reallocating
// only if dst is too small, and returns it.
func (st *AnalysisState) SnapshotOffsets(dst []clock.Time) []clock.Time {
	if cap(dst) < len(st.Odz) {
		dst = make([]clock.Time, len(st.Odz))
	}
	dst = dst[:len(st.Odz)]
	copy(dst, st.Odz)
	return dst
}

// RestoreOffsets copies a snapshot back into the state.
func (st *AnalysisState) RestoreOffsets(src []clock.Time) { copy(st.Odz, src) }

// getScratch borrows one per-cluster scratch arena (4×MaxClusterNets).
func (st *AnalysisState) getScratch() *[]clock.Time {
	return st.scratch.Get().(*[]clock.Time)
}

func (st *AnalysisState) putScratch(buf *[]clock.Time) { st.scratch.Put(buf) }

// markDirty sets cluster id in the reusable bitset.
func (st *AnalysisState) markDirty(id int) { st.dirty[id>>6] |= 1 << (uint(id) & 63) }

// isDirty reports whether cluster id is marked.
func (st *AnalysisState) isDirty(id int) bool {
	return st.dirty[id>>6]&(1<<(uint(id)&63)) != 0
}

// clearDirty zeroes the bitset (compiled to a memclr).
func (st *AnalysisState) clearDirty() {
	for i := range st.dirty {
		st.dirty[i] = 0
	}
}
