package sta

import (
	"bytes"
	"strings"
	"testing"

	"hummingbird/internal/telemetry"
)

// TestParallelWorkerTelemetry: the scheduler's utilisation surface — the
// per-worker busy timer and the steal counter — must render on the
// Prometheus exposition (the /metrics endpoint serves exactly this
// writer's output) and the whole exposition must stay parseable.
func TestParallelWorkerTelemetry(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	cd := socFixture(t, 48, 6, 2, 0x7E1)
	st := NewState(cd)
	steals0 := mSteals.Load()
	// A worker that drains its own queue pulls from the others' cursors;
	// with several workers over a finite chunk list at least one steal is
	// all but certain per run. Loop a few runs to make it deterministic.
	for i := 0; i < 10 && mSteals.Load() == steals0; i++ {
		AnalyzeParallel(cd, st, 4)
	}
	if mSteals.Load() == steals0 {
		t.Fatal("no steal recorded across 10 parallel runs")
	}

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"hb_sta_worker_busy_seconds", // per-worker utilisation histogram
		"hb_sta_steals_total",        // chunks executed off another worker's queue
		"hb_sta_parallel_runs_total",
		"hb_sta_parallel_worker_busy_ns_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
