// Package sta performs the block slack computation of §7 (Hitchcock's block
// method [6], with the separate rise/fall settling times of Bening et al.
// [7]): for every cluster and every break-open analysis pass it traces
// signal ready times forward (equation 1), required times backward and node
// slacks (equation 2), at the cluster's current synchronising-element
// offsets.
//
// All times inside one pass are *window coordinates*: picoseconds since the
// pass's break point β. Cluster input assertion times and output closure
// times land in the window via the breakopen position conventions, then the
// element offsets are added. Outputs the pass is not assigned to receive an
// infinite closure time ("we set the node slack to a large number", §7);
// the final slack of a node is the minimum over all passes.
package sta

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/failpoint"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/span"
)

// Hot-path instruments. Counters are atomic and lock-free; when
// telemetry is disabled each costs one atomic load (see
// internal/telemetry). Per-worker utilisation of AnalyzeParallel is
// derived as parallel_worker_busy_ns / (parallel_wall_ns × workers).
var (
	mAnalyses         = telemetry.NewCounter("sta.analyses")
	mRecomputes       = telemetry.NewCounter("sta.recomputes")
	mClustersAnalyzed = telemetry.NewCounter("sta.clusters_analyzed")
	mPasses           = telemetry.NewCounter("sta.passes")
	mParallelRuns     = telemetry.NewCounter("sta.parallel_runs")
	mParallelWorkers  = telemetry.NewCounter("sta.parallel_workers")
	mWorkerBusyNs     = telemetry.NewCounter("sta.parallel_worker_busy_ns")
	mParallelWallNs   = telemetry.NewCounter("sta.parallel_wall_ns")
	mCancelled        = telemetry.NewCounter("sta.cancelled")
)

const (
	posInf = clock.Inf
	negInf = -clock.Inf
)

// PassDetail is the full per-net timing of one analysis pass of one
// cluster, in window coordinates.
type PassDetail struct {
	Cluster int
	Pass    int
	Beta    clock.Time
	// Nets lists the cluster's member nets (global ids); the parallel
	// slices below are indexed identically.
	Nets   []int
	ReadyR []clock.Time
	ReadyF []clock.Time
	ReqR   []clock.Time
	ReqF   []clock.Time
}

// Result is one full analysis of a network at its current offsets.
type Result struct {
	// InSlack[e] is the node slack at element e's data input terminal
	// (the cluster-output constraint), +Inf if e has no analyzed input.
	InSlack []clock.Time
	// OutSlack[e] is the node slack at element e's output terminal: the
	// tightest constraint over all paths leaving it, +Inf if none.
	OutSlack []clock.Time
	// NetSlack[n] is the minimum node slack of net n over all passes and
	// transitions, +Inf for nets outside any analyzed cluster.
	NetSlack []clock.Time
	// Passes carries the per-pass detail used for reporting and for
	// Algorithm 2's recorded ready/required times.
	Passes []PassDetail
}

// Clone returns a deep copy of the result. The per-pass Nets slices are
// shared with the original: they alias the owning cluster's member list,
// which no analysis mutates.
func (r *Result) Clone() *Result {
	c := &Result{
		InSlack:  append([]clock.Time(nil), r.InSlack...),
		OutSlack: append([]clock.Time(nil), r.OutSlack...),
		NetSlack: append([]clock.Time(nil), r.NetSlack...),
		Passes:   make([]PassDetail, len(r.Passes)),
	}
	for i, p := range r.Passes {
		c.Passes[i] = PassDetail{
			Cluster: p.Cluster, Pass: p.Pass, Beta: p.Beta,
			Nets:   p.Nets,
			ReadyR: append([]clock.Time(nil), p.ReadyR...),
			ReadyF: append([]clock.Time(nil), p.ReadyF...),
			ReqR:   append([]clock.Time(nil), p.ReqR...),
			ReqF:   append([]clock.Time(nil), p.ReqF...),
		}
	}
	return c
}

// MinElemSlack returns the smaller of the element's terminal slacks.
func (r *Result) MinElemSlack(e int) clock.Time {
	s := r.InSlack[e]
	if r.OutSlack[e] < s {
		s = r.OutSlack[e]
	}
	return s
}

// WorstSlack returns the minimum slack over every element terminal.
func (r *Result) WorstSlack() clock.Time {
	w := posInf
	for i := range r.InSlack {
		if r.InSlack[i] < w {
			w = r.InSlack[i]
		}
		if r.OutSlack[i] < w {
			w = r.OutSlack[i]
		}
	}
	return w
}

// Analyze runs every pass of every cluster against the network's current
// element offsets. It cannot be interrupted; servers and other callers
// with deadlines use AnalyzeContext.
func Analyze(nw *cluster.Network) *Result {
	mAnalyses.Inc()
	res := newResult(nw)
	for _, cl := range nw.Clusters {
		res.Passes = append(res.Passes, analyzeCluster(nw, cl, res)...)
	}
	return res
}

// interrupt builds the per-cluster cancellation check of the Context
// analysis variants: the "sta.cluster" failpoint first (so chaos tests can
// inject sleeps, errors and panics into the middle of an analysis), then
// the context. The returned error is context.Cause's, so a caller-supplied
// cancel cause propagates.
func interrupt(ctx context.Context) func() error {
	return func() error {
		if err := failpoint.Hit("sta.cluster"); err != nil {
			return err
		}
		if ctx.Err() != nil {
			mCancelled.Inc()
			return context.Cause(ctx)
		}
		return nil
	}
}

// AnalyzeContext is Analyze with cancellation: the context is checked
// between clusters, and an expired deadline abandons the analysis,
// returning the cause. The partial result is discarded — an interrupted
// analysis is never a valid block analysis.
func AnalyzeContext(ctx context.Context, nw *cluster.Network) (*Result, error) {
	mAnalyses.Inc()
	_, sp := span.Start(ctx, "sta.analyze")
	sp.AnnotateInt("clusters", len(nw.Clusters))
	defer sp.End()
	check := interrupt(ctx)
	res := newResult(nw)
	for _, cl := range nw.Clusters {
		if err := check(); err != nil {
			return nil, err
		}
		res.Passes = append(res.Passes, analyzeCluster(nw, cl, res)...)
	}
	return res, nil
}

// AnalyzeParallel is Analyze with the per-cluster work spread across the
// given number of goroutines. Clusters touch disjoint slices of the result
// (every net, and every element terminal, belongs to exactly one cluster),
// so no locking is needed beyond the final deterministic merge of the pass
// details. Results are identical to Analyze.
func AnalyzeParallel(nw *cluster.Network, workers int) *Result {
	if workers <= 1 || len(nw.Clusters) <= 1 {
		return Analyze(nw)
	}
	mParallelRuns.Inc()
	mParallelWorkers.Add(int64(workers))
	// Utilisation accounting reads the clock per cluster, so it is gated
	// on the telemetry switch rather than paid unconditionally.
	instrument := telemetry.Enabled()
	var wallStart time.Time
	if instrument {
		wallStart = time.Now()
	}
	res := newResult(nw)
	details := make([][]PassDetail, len(nw.Clusters))
	var wg sync.WaitGroup
	next := int32(0)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var busy time.Duration
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(nw.Clusters) {
					break
				}
				if instrument {
					t0 := time.Now()
					details[i] = analyzeCluster(nw, nw.Clusters[i], res)
					busy += time.Since(t0)
				} else {
					details[i] = analyzeCluster(nw, nw.Clusters[i], res)
				}
			}
			if instrument {
				mWorkerBusyNs.Add(busy.Nanoseconds())
			}
		}()
	}
	wg.Wait()
	if instrument {
		mParallelWallNs.Add(time.Since(wallStart).Nanoseconds())
	}
	for _, d := range details {
		res.Passes = append(res.Passes, d...)
	}
	return res
}

// Recompute re-runs the block analysis for just the named clusters,
// updating res in place. Because every net, and every element terminal,
// belongs to exactly one cluster, a cluster's contributions to the result
// can be reset and rebuilt independently — the basis of the incremental
// mode of Algorithm 1's sweeps: after a slack transfer only the clusters
// adjacent to the moved element change.
func Recompute(nw *cluster.Network, res *Result, clusterIDs []int) {
	recompute(nw, res, clusterIDs, nil)
}

// RecomputeContext is Recompute with cancellation, checked between
// clusters. On a non-nil error res has been partially rebuilt and must be
// discarded by the caller — slacks of the untouched clusters are intact
// but the interrupted cluster's are reset to +Inf.
func RecomputeContext(ctx context.Context, nw *cluster.Network, res *Result, clusterIDs []int) error {
	_, sp := span.Start(ctx, "sta.recompute")
	sp.AnnotateInt("dirtyClusters", len(clusterIDs))
	defer sp.End()
	return recompute(nw, res, clusterIDs, interrupt(ctx))
}

func recompute(nw *cluster.Network, res *Result, clusterIDs []int, check func() error) error {
	mRecomputes.Inc()
	dirty := make(map[int]bool, len(clusterIDs))
	for _, id := range clusterIDs {
		dirty[id] = true
		cl := nw.Clusters[id]
		for _, in := range cl.Inputs {
			res.OutSlack[in.Elem] = posInf
		}
		for _, out := range cl.Outputs {
			res.InSlack[out.Elem] = posInf
		}
		for _, n := range cl.Nets {
			res.NetSlack[n] = posInf
		}
	}
	// Drop every dirty cluster's old pass details in one filter pass.
	kept := res.Passes[:0]
	for _, p := range res.Passes {
		if !dirty[p.Cluster] {
			kept = append(kept, p)
		}
	}
	res.Passes = kept
	for _, id := range clusterIDs {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		res.Passes = append(res.Passes, analyzeCluster(nw, nw.Clusters[id], res)...)
	}
	// Keep the pass list in Analyze's (cluster, pass) order so a result
	// maintained by Recompute stays interchangeable with a fresh Analyze.
	sort.Slice(res.Passes, func(i, j int) bool {
		if res.Passes[i].Cluster != res.Passes[j].Cluster {
			return res.Passes[i].Cluster < res.Passes[j].Cluster
		}
		return res.Passes[i].Pass < res.Passes[j].Pass
	})
	return nil
}

func newResult(nw *cluster.Network) *Result {
	res := &Result{
		InSlack:  make([]clock.Time, len(nw.Elems)),
		OutSlack: make([]clock.Time, len(nw.Elems)),
		NetSlack: make([]clock.Time, len(nw.Nets)),
	}
	for i := range res.InSlack {
		res.InSlack[i], res.OutSlack[i] = posInf, posInf
	}
	for i := range res.NetSlack {
		res.NetSlack[i] = posInf
	}
	return res
}

func analyzeCluster(nw *cluster.Network, cl *cluster.Cluster, res *Result) []PassDetail {
	mClustersAnalyzed.Inc()
	mPasses.Add(int64(len(cl.Plan.Breaks)))
	var details []PassDetail
	T := nw.Clocks.Overall()
	n := len(cl.Nets)
	readyR := make([]clock.Time, n)
	readyF := make([]clock.Time, n)
	reqR := make([]clock.Time, n)
	reqF := make([]clock.Time, n)

	for pi, beta := range cl.Plan.Breaks {
		for i := 0; i < n; i++ {
			readyR[i], readyF[i] = negInf, negInf
			reqR[i], reqF[i] = posInf, posInf
		}
		// Cluster input assertions (both transitions assert together).
		for _, in := range cl.Inputs {
			e := nw.Elems[in.Elem]
			a := breakopen.AssertPos(e.IdealAssert, beta, T) + e.OutputOffset()
			li := cl.LocalIndex(in.Net)
			if a > readyR[li] {
				readyR[li] = a
			}
			if a > readyF[li] {
				readyF[li] = a
			}
		}
		// Equation 1: forward ready times in topological order.
		for _, netID := range cl.Order {
			li := cl.LocalIndex(netID)
			rr, rf := readyR[li], readyF[li]
			if rr == negInf && rf == negInf {
				continue
			}
			for _, ai := range cl.ArcsFrom(netID) {
				a := &cl.Arcs[ai]
				lo := cl.LocalIndex(a.To)
				or, of := arcForward(a, rr, rf)
				if or > readyR[lo] {
					readyR[lo] = or
				}
				if of > readyF[lo] {
					readyF[lo] = of
				}
			}
		}
		// Closure times at assigned outputs; input-terminal slacks.
		for oi, out := range cl.Outputs {
			assigned, ok := cl.Plan.Assign[oi]
			if !ok || assigned != pi {
				continue
			}
			e := nw.Elems[out.Elem]
			c := breakopen.ClosePos(e.IdealClose, beta, T) + e.InputOffset()
			li := cl.LocalIndex(out.Net)
			if c < reqR[li] {
				reqR[li] = c
			}
			if c < reqF[li] {
				reqF[li] = c
			}
			ready := maxT(readyR[li], readyF[li])
			if ready != negInf {
				if s := c - ready; s < res.InSlack[out.Elem] {
					res.InSlack[out.Elem] = s
				}
			}
		}
		// Equation 2: required times backward in reverse topological order.
		for k := len(cl.Order) - 1; k >= 0; k-- {
			netID := cl.Order[k]
			li := cl.LocalIndex(netID)
			for _, ai := range cl.ArcsFrom(netID) {
				a := &cl.Arcs[ai]
				lo := cl.LocalIndex(a.To)
				qr, qf := arcBackward(a, reqR[lo], reqF[lo])
				if qr < reqR[li] {
					reqR[li] = qr
				}
				if qf < reqF[li] {
					reqF[li] = qf
				}
			}
		}
		// Output-terminal slacks of the cluster inputs, and net slacks.
		for _, in := range cl.Inputs {
			e := nw.Elems[in.Elem]
			a := breakopen.AssertPos(e.IdealAssert, beta, T) + e.OutputOffset()
			li := cl.LocalIndex(in.Net)
			q := minT(reqR[li], reqF[li])
			if q != posInf {
				if s := q - a; s < res.OutSlack[in.Elem] {
					res.OutSlack[in.Elem] = s
				}
			}
		}
		for i, netID := range cl.Nets {
			sr, sf := posInf, posInf
			if readyR[i] != negInf && reqR[i] != posInf {
				sr = reqR[i] - readyR[i]
			}
			if readyF[i] != negInf && reqF[i] != posInf {
				sf = reqF[i] - readyF[i]
			}
			if s := minT(sr, sf); s < res.NetSlack[netID] {
				res.NetSlack[netID] = s
			}
		}
		details = append(details, PassDetail{
			Cluster: cl.ID, Pass: pi, Beta: beta,
			Nets:   cl.Nets,
			ReadyR: append([]clock.Time(nil), readyR...),
			ReadyF: append([]clock.Time(nil), readyF...),
			ReqR:   append([]clock.Time(nil), reqR...),
			ReqF:   append([]clock.Time(nil), reqF...),
		})
	}
	// Clusters may legitimately have zero passes (no outputs): element
	// output terminals feeding them keep +Inf slack.
	return details
}

// arcForward maps input ready times through an arc's unateness to the
// output transitions it produces.
func arcForward(a *cluster.Arc, rr, rf clock.Time) (or, of clock.Time) {
	or, of = negInf, negInf
	switch a.Sense {
	case celllib.PositiveUnate:
		if rr != negInf {
			or = rr + a.D.MaxRise
		}
		if rf != negInf {
			of = rf + a.D.MaxFall
		}
	case celllib.NegativeUnate:
		if rf != negInf {
			or = rf + a.D.MaxRise
		}
		if rr != negInf {
			of = rr + a.D.MaxFall
		}
	default: // NonUnate
		worst := maxT(rr, rf)
		if worst != negInf {
			or = worst + a.D.MaxRise
			of = worst + a.D.MaxFall
		}
	}
	return or, of
}

// arcBackward maps output required times back to the arc's input.
func arcBackward(a *cluster.Arc, qr, qf clock.Time) (ir, ifl clock.Time) {
	ir, ifl = posInf, posInf
	switch a.Sense {
	case celllib.PositiveUnate:
		if qr != posInf {
			ir = qr - a.D.MaxRise
		}
		if qf != posInf {
			ifl = qf - a.D.MaxFall
		}
	case celllib.NegativeUnate:
		if qr != posInf {
			ifl = qr - a.D.MaxRise
		}
		if qf != posInf {
			ir = qf - a.D.MaxFall
		}
	default: // NonUnate
		var w clock.Time = posInf
		if qr != posInf {
			w = qr - a.D.MaxRise
		}
		if qf != posInf && qf-a.D.MaxFall < w {
			w = qf - a.D.MaxFall
		}
		ir, ifl = w, w
	}
	return ir, ifl
}

func maxT(a, b clock.Time) clock.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b clock.Time) clock.Time {
	if a < b {
		return a
	}
	return b
}

// PathDelayMax returns the worst-case combinational delay from net `from`
// to net `to` within the cluster (max over transitions), or −1 if no path
// exists. Used by slow-path enumeration and the baselines.
func PathDelayMax(cl *cluster.Cluster, from, to int) clock.Time {
	n := len(cl.Nets)
	dr := make([]clock.Time, n)
	df := make([]clock.Time, n)
	for i := range dr {
		dr[i], df[i] = negInf, negInf
	}
	ls := cl.LocalIndex(from)
	lt := cl.LocalIndex(to)
	if ls < 0 || lt < 0 {
		return -1
	}
	dr[ls], df[ls] = 0, 0
	for _, netID := range cl.Order {
		li := cl.LocalIndex(netID)
		if dr[li] == negInf && df[li] == negInf {
			continue
		}
		for _, ai := range cl.ArcsFrom(netID) {
			a := &cl.Arcs[ai]
			lo := cl.LocalIndex(a.To)
			or, of := arcForward(a, dr[li], df[li])
			if or > dr[lo] {
				dr[lo] = or
			}
			if of > df[lo] {
				df[lo] = of
			}
		}
	}
	d := maxT(dr[lt], df[lt])
	if d == negInf {
		return -1
	}
	return d
}

// PathDelayMin returns the best-case combinational delay from net `from` to
// net `to` (min over transitions and paths), or −1 if no path exists. Used
// by the supplementary (double-clocking) path checks of §4.
func PathDelayMin(cl *cluster.Cluster, from, to int) clock.Time {
	n := len(cl.Nets)
	dr := make([]clock.Time, n)
	df := make([]clock.Time, n)
	for i := range dr {
		dr[i], df[i] = posInf, posInf
	}
	ls := cl.LocalIndex(from)
	lt := cl.LocalIndex(to)
	if ls < 0 || lt < 0 {
		return -1
	}
	dr[ls], df[ls] = 0, 0
	for _, netID := range cl.Order {
		li := cl.LocalIndex(netID)
		if dr[li] == posInf && df[li] == posInf {
			continue
		}
		for _, ai := range cl.ArcsFrom(netID) {
			a := &cl.Arcs[ai]
			lo := cl.LocalIndex(a.To)
			var or, of clock.Time = posInf, posInf
			switch a.Sense {
			case celllib.PositiveUnate:
				if dr[li] != posInf {
					or = dr[li] + a.D.MinRise
				}
				if df[li] != posInf {
					of = df[li] + a.D.MinFall
				}
			case celllib.NegativeUnate:
				if df[li] != posInf {
					or = df[li] + a.D.MinRise
				}
				if dr[li] != posInf {
					of = dr[li] + a.D.MinFall
				}
			default:
				best := minT(dr[li], df[li])
				if best != posInf {
					or = best + a.D.MinRise
					of = best + a.D.MinFall
				}
			}
			if or < dr[lo] {
				dr[lo] = or
			}
			if of < df[lo] {
				df[lo] = of
			}
		}
	}
	d := minT(dr[lt], df[lt])
	if d == posInf {
		return -1
	}
	return d
}
