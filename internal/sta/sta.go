// Package sta performs the block slack computation of §7 (Hitchcock's block
// method [6], with the separate rise/fall settling times of Bening et al.
// [7]): for every cluster and every break-open analysis pass it traces
// signal ready times forward (equation 1), required times backward and node
// slacks (equation 2), at the cluster's current synchronising-element
// offsets.
//
// All times inside one pass are *window coordinates*: picoseconds since the
// pass's break point β. Cluster input assertion times and output closure
// times land in the window via the breakopen position conventions, then the
// element offsets are added. Outputs the pass is not assigned to receive an
// infinite closure time ("we set the node slack to a large number", §7);
// the final slack of a node is the minimum over all passes.
package sta

import (
	"context"

	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/failpoint"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/span"
)

// Hot-path instruments. Counters are atomic and lock-free; when
// telemetry is disabled each costs one atomic load (see
// internal/telemetry). Per-worker utilisation of the level-scheduled
// parallel analysis is exported directly: sta.worker.busy is a histogram
// of each worker's busy time per run, and the aggregate utilisation is
// parallel_worker_busy_ns / (parallel_wall_ns × workers). sta.steals
// counts chunks a worker executed from another worker's queue.
var (
	mAnalyses         = telemetry.NewCounter("sta.analyses")
	mRecomputes       = telemetry.NewCounter("sta.recomputes")
	mClustersAnalyzed = telemetry.NewCounter("sta.clusters_analyzed")
	mPasses           = telemetry.NewCounter("sta.passes")
	mParallelRuns     = telemetry.NewCounter("sta.parallel_runs")
	mParallelWorkers  = telemetry.NewCounter("sta.parallel_workers")
	mWorkerBusyNs     = telemetry.NewCounter("sta.parallel_worker_busy_ns")
	mParallelWallNs   = telemetry.NewCounter("sta.parallel_wall_ns")
	mCancelled        = telemetry.NewCounter("sta.cancelled")
	mWorkerBusy       = telemetry.NewTimer("sta.worker.busy")
	mSteals           = telemetry.NewCounter("sta.steals")
)

const (
	posInf = clock.Inf
	negInf = -clock.Inf
)

// PassDetail is the full per-net timing of one analysis pass of one
// cluster, in window coordinates.
type PassDetail struct {
	Cluster int
	Pass    int
	Beta    clock.Time
	// Nets lists the cluster's member nets (global ids); the parallel
	// slices below are indexed identically.
	Nets   []int
	ReadyR []clock.Time
	ReadyF []clock.Time
	ReqR   []clock.Time
	ReqF   []clock.Time
}

// Result is one full analysis of a network at its current offsets.
type Result struct {
	// InSlack[e] is the node slack at element e's data input terminal
	// (the cluster-output constraint), +Inf if e has no analyzed input.
	InSlack []clock.Time
	// OutSlack[e] is the node slack at element e's output terminal: the
	// tightest constraint over all paths leaving it, +Inf if none.
	OutSlack []clock.Time
	// NetSlack[n] is the minimum node slack of net n over all passes and
	// transitions, +Inf for nets outside any analyzed cluster.
	NetSlack []clock.Time
	// Passes carries the per-pass detail used for reporting and for
	// Algorithm 2's recorded ready/required times.
	Passes []PassDetail
}

// Clone returns a deep copy of the result. The per-pass Nets slices are
// shared with the original: they alias the owning cluster's member list,
// which no analysis mutates. All time vectors — the three slack vectors
// and every pass's four views — share ONE backing allocation, so a Clone
// is exactly three allocations (struct, backing, Passes slice) regardless
// of pass count. Clone runs on every Constraints() call and engine
// rebase, so its allocation count matters.
func (r *Result) Clone() *Result {
	nE, nN := len(r.InSlack), len(r.NetSlack)
	total := 2*nE + nN
	for i := range r.Passes {
		total += 4 * len(r.Passes[i].Nets)
	}
	backing := make([]clock.Time, total)
	c := &Result{
		InSlack:  backing[:nE:nE],
		OutSlack: backing[nE : 2*nE : 2*nE],
		NetSlack: backing[2*nE : 2*nE+nN : 2*nE+nN],
		Passes:   make([]PassDetail, len(r.Passes)),
	}
	copy(c.InSlack, r.InSlack)
	copy(c.OutSlack, r.OutSlack)
	copy(c.NetSlack, r.NetSlack)
	off := 2*nE + nN
	for i, p := range r.Passes {
		n := len(p.Nets)
		pb := backing[off : off+4*n : off+4*n]
		off += 4 * n
		copy(pb[0*n:1*n], p.ReadyR)
		copy(pb[1*n:2*n], p.ReadyF)
		copy(pb[2*n:3*n], p.ReqR)
		copy(pb[3*n:4*n], p.ReqF)
		c.Passes[i] = PassDetail{
			Cluster: p.Cluster, Pass: p.Pass, Beta: p.Beta,
			Nets:   p.Nets,
			ReadyR: pb[0*n : 1*n : 1*n],
			ReadyF: pb[1*n : 2*n : 2*n],
			ReqR:   pb[2*n : 3*n : 3*n],
			ReqF:   pb[3*n : 4*n : 4*n],
		}
	}
	return c
}

// CloneInto copies r into dst, reusing dst's existing vectors when the
// shapes match (same element/net counts and identical pass layout — always
// true across delay-only edits, where topology is frozen). When dst is nil
// or shaped differently it falls back to Clone. The incremental engine
// double-buffers its cached base result through this to rebase without
// allocating.
func (r *Result) CloneInto(dst *Result) *Result {
	if dst == nil || len(dst.InSlack) != len(r.InSlack) ||
		len(dst.NetSlack) != len(r.NetSlack) || len(dst.Passes) != len(r.Passes) {
		return r.Clone()
	}
	for i := range r.Passes {
		if len(dst.Passes[i].Nets) != len(r.Passes[i].Nets) {
			return r.Clone()
		}
	}
	copy(dst.InSlack, r.InSlack)
	copy(dst.OutSlack, r.OutSlack)
	copy(dst.NetSlack, r.NetSlack)
	for i := range r.Passes {
		p, q := &r.Passes[i], &dst.Passes[i]
		q.Cluster, q.Pass, q.Beta, q.Nets = p.Cluster, p.Pass, p.Beta, p.Nets
		copy(q.ReadyR, p.ReadyR)
		copy(q.ReadyF, p.ReadyF)
		copy(q.ReqR, p.ReqR)
		copy(q.ReqF, p.ReqF)
	}
	return dst
}

// MinElemSlack returns the smaller of the element's terminal slacks.
func (r *Result) MinElemSlack(e int) clock.Time {
	s := r.InSlack[e]
	if r.OutSlack[e] < s {
		s = r.OutSlack[e]
	}
	return s
}

// WorstSlack returns the minimum slack over every element terminal.
func (r *Result) WorstSlack() clock.Time {
	w := posInf
	for i := range r.InSlack {
		if r.InSlack[i] < w {
			w = r.InSlack[i]
		}
		if r.OutSlack[i] < w {
			w = r.OutSlack[i]
		}
	}
	return w
}

// Analyze runs every pass of every cluster against the state's current
// element offsets. It cannot be interrupted; servers and other callers
// with deadlines use AnalyzeContext. The compiled design is read-only
// throughout — concurrent analyses may share it, each with its own state.
func Analyze(cd *cluster.CompiledDesign, st *AnalysisState) *Result {
	mAnalyses.Inc()
	res := newResult(cd)
	for _, cc := range cd.CC {
		res.Passes = analyzeCluster(cd, cc, st, res, res.Passes)
	}
	return res
}

// interrupt builds the per-cluster cancellation check of the Context
// analysis variants: the "sta.cluster" failpoint first (so chaos tests can
// inject sleeps, errors and panics into the middle of an analysis), then
// the context. The returned error is context.Cause's, so a caller-supplied
// cancel cause propagates.
func interrupt(ctx context.Context) func() error {
	return func() error {
		if err := failpoint.Hit("sta.cluster"); err != nil {
			return err
		}
		if ctx.Err() != nil {
			mCancelled.Inc()
			return context.Cause(ctx)
		}
		return nil
	}
}

// AnalyzeContext is Analyze with cancellation: the context is checked
// between clusters, and an expired deadline abandons the analysis,
// returning the cause. The partial result is discarded — an interrupted
// analysis is never a valid block analysis.
func AnalyzeContext(ctx context.Context, cd *cluster.CompiledDesign, st *AnalysisState) (*Result, error) {
	mAnalyses.Inc()
	_, sp := span.Start(ctx, "sta.analyze")
	sp.AnnotateInt("clusters", len(cd.CC))
	defer sp.End()
	check := interrupt(ctx)
	res := newResult(cd)
	for _, cc := range cd.CC {
		if err := check(); err != nil {
			return nil, err
		}
		res.Passes = analyzeCluster(cd, cc, st, res, res.Passes)
	}
	return res, nil
}

// Recompute re-runs the block analysis for just the named clusters,
// updating res in place. Because every net, and every element terminal,
// belongs to exactly one cluster, a cluster's contributions to the result
// can be reset and rebuilt independently — the basis of the incremental
// mode of Algorithm 1's sweeps: after a slack transfer only the clusters
// adjacent to the moved element change.
func Recompute(cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int) {
	recompute(cd, st, res, clusterIDs, nil)
}

// RecomputeContext is Recompute with cancellation, checked between
// clusters. On a non-nil error res has been partially rebuilt and must be
// discarded by the caller — slacks of the untouched clusters are intact
// but the interrupted cluster's are reset to +Inf.
func RecomputeContext(ctx context.Context, cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int) error {
	_, sp := span.Start(ctx, "sta.recompute")
	sp.AnnotateInt("dirtyClusters", len(clusterIDs))
	defer sp.End()
	return recompute(cd, st, res, clusterIDs, interrupt(ctx))
}

func recompute(cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int, check func() error) error {
	mRecomputes.Inc()
	resetDirty(cd, st, res, clusterIDs)
	for _, id := range clusterIDs {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		res.Passes = analyzeCluster(cd, cd.CC[id], st, res, res.Passes)
	}
	restorePassOrder(res)
	return nil
}

// resetDirty marks the named clusters in the state's reusable bitset,
// resets every slack they own to +Inf and drops their old pass details in
// one filter pass. The dirty set is the state's bitset — incremental
// sweeps call recompute once per sweep, so a per-call map allocation here
// is hot-path garbage.
func resetDirty(cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int) {
	st.clearDirty()
	for _, id := range clusterIDs {
		st.markDirty(id)
		cl := cd.Network.Clusters[id]
		for _, in := range cl.Inputs {
			res.OutSlack[in.Elem] = posInf
		}
		for _, out := range cl.Outputs {
			res.InSlack[out.Elem] = posInf
		}
		for _, n := range cl.Nets {
			res.NetSlack[n] = posInf
		}
	}
	kept := res.Passes[:0]
	for _, p := range res.Passes {
		if !st.isDirty(p.Cluster) {
			kept = append(kept, p)
		}
	}
	res.Passes = kept
}

// restorePassOrder keeps the pass list in Analyze's (cluster, pass) order
// so a result maintained by Recompute stays interchangeable with a fresh
// Analyze. The kept run and the appended details are each already
// ordered, so an insertion pass restores the global order; unlike
// sort.Slice it does not allocate, and recompute runs once per
// incremental sweep.
func restorePassOrder(res *Result) {
	ps := res.Passes
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].Cluster < ps[j-1].Cluster ||
			(ps[j].Cluster == ps[j-1].Cluster && ps[j].Pass < ps[j-1].Pass)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func newResult(cd *cluster.CompiledDesign) *Result {
	nE, nN := len(cd.Elems), len(cd.Nets)
	backing := make([]clock.Time, 2*nE+nN)
	for i := range backing {
		backing[i] = posInf
	}
	return &Result{
		InSlack:  backing[:nE:nE],
		OutSlack: backing[nE : 2*nE : 2*nE],
		NetSlack: backing[2*nE:],
	}
}

// analyzeCluster appends the cluster's pass details to dst and returns it.
// Appending into the caller's pass list lets a Recompute whose cloned
// Result already has the capacity rebuild dirty clusters without growing
// it; the detail vectors themselves are one backing allocation per cluster
// however many passes it runs. They escape into the caller's Result
// (reports hold them), so they cannot come from the pooled scratch.
func analyzeCluster(cd *cluster.CompiledDesign, cc *cluster.CompiledCluster, st *AnalysisState, res *Result, dst []PassDetail) []PassDetail {
	// One pooled arena holds all four per-net vectors; the level-scheduled
	// scheduler's workers instead pass their own arena to
	// analyzeClusterScratch directly, reusing it across clusters and
	// levels.
	buf := st.getScratch()
	defer st.putScratch(buf)
	return analyzeClusterScratch(cd, cc, st, res, dst, buf)
}

// analyzeClusterScratch is analyzeCluster against a caller-owned scratch
// arena (≥ 4×MaxClusterNets entries).
func analyzeClusterScratch(cd *cluster.CompiledDesign, cc *cluster.CompiledCluster, st *AnalysisState, res *Result, dst []PassDetail, buf *[]clock.Time) []PassDetail {
	mClustersAnalyzed.Inc()
	mPasses.Add(int64(len(cc.Plan.Breaks)))
	T := cd.Clocks.Overall()
	n := len(cc.Nets)
	details := dst
	db := make([]clock.Time, 4*n*len(cc.Plan.Breaks))
	scratch := (*buf)[:4*n]
	readyR := scratch[0*n : 1*n]
	readyF := scratch[1*n : 2*n]
	reqR := scratch[2*n : 3*n]
	reqF := scratch[3*n : 4*n]

	for pi, beta := range cc.Plan.Breaks {
		for i := 0; i < n; i++ {
			readyR[i], readyF[i] = negInf, negInf
			reqR[i], reqF[i] = posInf, posInf
		}
		// Cluster input assertions (both transitions assert together).
		for ii, in := range cc.Inputs {
			e := cd.Elems[in.Elem]
			a := breakopen.AssertPos(e.IdealAssert, beta, T) + e.OutputOffsetAt(st.Odz[in.Elem])
			li := cc.InLocal[ii]
			if a > readyR[li] {
				readyR[li] = a
			}
			if a > readyF[li] {
				readyF[li] = a
			}
		}
		// Equation 1: forward ready times in topological order.
		for _, li := range cc.OrderLocal {
			rr, rf := readyR[li], readyF[li]
			if rr == negInf && rf == negInf {
				continue
			}
			for _, ai := range cc.ArcIdx[cc.ArcStart[li]:cc.ArcStart[li+1]] {
				a := &cc.Arcs[ai]
				lo := cc.ToLocal[ai]
				or, of := arcForward(a, rr, rf)
				if or > readyR[lo] {
					readyR[lo] = or
				}
				if of > readyF[lo] {
					readyF[lo] = of
				}
			}
		}
		// Closure times at assigned outputs; input-terminal slacks.
		for oi, out := range cc.Outputs {
			assigned, ok := cc.Plan.Assign[oi]
			if !ok || assigned != pi {
				continue
			}
			e := cd.Elems[out.Elem]
			c := breakopen.ClosePos(e.IdealClose, beta, T) + e.InputOffsetAt(st.Odz[out.Elem])
			li := cc.OutLocal[oi]
			if c < reqR[li] {
				reqR[li] = c
			}
			if c < reqF[li] {
				reqF[li] = c
			}
			ready := maxT(readyR[li], readyF[li])
			if ready != negInf {
				if s := c - ready; s < res.InSlack[out.Elem] {
					res.InSlack[out.Elem] = s
				}
			}
		}
		// Equation 2: required times backward in reverse topological order.
		for k := len(cc.OrderLocal) - 1; k >= 0; k-- {
			li := cc.OrderLocal[k]
			for _, ai := range cc.ArcIdx[cc.ArcStart[li]:cc.ArcStart[li+1]] {
				a := &cc.Arcs[ai]
				lo := cc.ToLocal[ai]
				qr, qf := arcBackward(a, reqR[lo], reqF[lo])
				if qr < reqR[li] {
					reqR[li] = qr
				}
				if qf < reqF[li] {
					reqF[li] = qf
				}
			}
		}
		// Output-terminal slacks of the cluster inputs, and net slacks.
		for ii, in := range cc.Inputs {
			e := cd.Elems[in.Elem]
			a := breakopen.AssertPos(e.IdealAssert, beta, T) + e.OutputOffsetAt(st.Odz[in.Elem])
			li := cc.InLocal[ii]
			q := minT(reqR[li], reqF[li])
			if q != posInf {
				if s := q - a; s < res.OutSlack[in.Elem] {
					res.OutSlack[in.Elem] = s
				}
			}
		}
		for i, netID := range cc.Nets {
			sr, sf := posInf, posInf
			if readyR[i] != negInf && reqR[i] != posInf {
				sr = reqR[i] - readyR[i]
			}
			if readyF[i] != negInf && reqF[i] != posInf {
				sf = reqF[i] - readyF[i]
			}
			if s := minT(sr, sf); s < res.NetSlack[netID] {
				res.NetSlack[netID] = s
			}
		}
		pb := db[pi*4*n : (pi+1)*4*n : (pi+1)*4*n]
		copy(pb[0*n:1*n], readyR)
		copy(pb[1*n:2*n], readyF)
		copy(pb[2*n:3*n], reqR)
		copy(pb[3*n:4*n], reqF)
		details = append(details, PassDetail{
			Cluster: cc.ID, Pass: pi, Beta: beta,
			Nets:   cc.Nets,
			ReadyR: pb[0*n : 1*n : 1*n],
			ReadyF: pb[1*n : 2*n : 2*n],
			ReqR:   pb[2*n : 3*n : 3*n],
			ReqF:   pb[3*n : 4*n : 4*n],
		})
	}
	// Clusters may legitimately have zero passes (no outputs): element
	// output terminals feeding them keep +Inf slack.
	return details
}

// arcForward maps input ready times through an arc's unateness to the
// output transitions it produces.
func arcForward(a *cluster.Arc, rr, rf clock.Time) (or, of clock.Time) {
	or, of = negInf, negInf
	switch a.Sense {
	case celllib.PositiveUnate:
		if rr != negInf {
			or = rr + a.D.MaxRise
		}
		if rf != negInf {
			of = rf + a.D.MaxFall
		}
	case celllib.NegativeUnate:
		if rf != negInf {
			or = rf + a.D.MaxRise
		}
		if rr != negInf {
			of = rr + a.D.MaxFall
		}
	default: // NonUnate
		worst := maxT(rr, rf)
		if worst != negInf {
			or = worst + a.D.MaxRise
			of = worst + a.D.MaxFall
		}
	}
	return or, of
}

// arcBackward maps output required times back to the arc's input.
func arcBackward(a *cluster.Arc, qr, qf clock.Time) (ir, ifl clock.Time) {
	ir, ifl = posInf, posInf
	switch a.Sense {
	case celllib.PositiveUnate:
		if qr != posInf {
			ir = qr - a.D.MaxRise
		}
		if qf != posInf {
			ifl = qf - a.D.MaxFall
		}
	case celllib.NegativeUnate:
		if qr != posInf {
			ifl = qr - a.D.MaxRise
		}
		if qf != posInf {
			ir = qf - a.D.MaxFall
		}
	default: // NonUnate
		var w clock.Time = posInf
		if qr != posInf {
			w = qr - a.D.MaxRise
		}
		if qf != posInf && qf-a.D.MaxFall < w {
			w = qf - a.D.MaxFall
		}
		ir, ifl = w, w
	}
	return ir, ifl
}

func maxT(a, b clock.Time) clock.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b clock.Time) clock.Time {
	if a < b {
		return a
	}
	return b
}

// PathDelayMax returns the worst-case combinational delay from net `from`
// to net `to` within the cluster (max over transitions), or −1 if no path
// exists. Used by slow-path enumeration and the baselines.
func PathDelayMax(cl *cluster.Cluster, from, to int) clock.Time {
	n := len(cl.Nets)
	dr := make([]clock.Time, n)
	df := make([]clock.Time, n)
	for i := range dr {
		dr[i], df[i] = negInf, negInf
	}
	ls := cl.LocalIndex(from)
	lt := cl.LocalIndex(to)
	if ls < 0 || lt < 0 {
		return -1
	}
	dr[ls], df[ls] = 0, 0
	for _, netID := range cl.Order {
		li := cl.LocalIndex(netID)
		if dr[li] == negInf && df[li] == negInf {
			continue
		}
		for _, ai := range cl.ArcsFrom(netID) {
			a := &cl.Arcs[ai]
			lo := cl.LocalIndex(a.To)
			or, of := arcForward(a, dr[li], df[li])
			if or > dr[lo] {
				dr[lo] = or
			}
			if of > df[lo] {
				df[lo] = of
			}
		}
	}
	d := maxT(dr[lt], df[lt])
	if d == negInf {
		return -1
	}
	return d
}

// PathDelayMin returns the best-case combinational delay from net `from` to
// net `to` (min over transitions and paths), or −1 if no path exists. Used
// by the supplementary (double-clocking) path checks of §4.
func PathDelayMin(cl *cluster.Cluster, from, to int) clock.Time {
	n := len(cl.Nets)
	dr := make([]clock.Time, n)
	df := make([]clock.Time, n)
	for i := range dr {
		dr[i], df[i] = posInf, posInf
	}
	ls := cl.LocalIndex(from)
	lt := cl.LocalIndex(to)
	if ls < 0 || lt < 0 {
		return -1
	}
	dr[ls], df[ls] = 0, 0
	for _, netID := range cl.Order {
		li := cl.LocalIndex(netID)
		if dr[li] == posInf && df[li] == posInf {
			continue
		}
		for _, ai := range cl.ArcsFrom(netID) {
			a := &cl.Arcs[ai]
			lo := cl.LocalIndex(a.To)
			var or, of clock.Time = posInf, posInf
			switch a.Sense {
			case celllib.PositiveUnate:
				if dr[li] != posInf {
					or = dr[li] + a.D.MinRise
				}
				if df[li] != posInf {
					of = df[li] + a.D.MinFall
				}
			case celllib.NegativeUnate:
				if df[li] != posInf {
					or = df[li] + a.D.MinRise
				}
				if dr[li] != posInf {
					of = dr[li] + a.D.MinFall
				}
			default:
				best := minT(dr[li], df[li])
				if best != posInf {
					or = best + a.D.MinRise
					of = best + a.D.MinFall
				}
			}
			if or < dr[lo] {
				dr[lo] = or
			}
			if of < df[lo] {
				df[lo] = of
			}
		}
	}
	d := minT(dr[lt], df[lt])
	if d == posInf {
		return -1
	}
	return d
}
