package sta

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/span"
)

// Level-scheduled work-stealing analysis.
//
// The compile layer levelizes the cluster DAG (cluster.CompiledDesign's
// Level/LevelStart/LevelOrder); the scheduler here walks that order with a
// fixed worker pool. Within one block analysis clusters write disjoint
// slices of the Result — every net, and every element terminal, belongs to
// exactly one cluster, and the element offsets the kernels read are frozen
// for the duration — so the level structure imposes no synchronisation
// requirement at all: no level barrier is ever *required*, and none is
// taken. What the levels buy is the traversal order: within a level,
// clusters ascend in arc-backing offset, so workers sweep the shared CSR
// arrays front to back (cache-linear), and the incremental path groups its
// dirty walk the same way.
//
// Work distribution: the level order is cut into contiguous chunks sized
// by arc count (clusters vary by orders of magnitude in size; counting
// clusters would leave one worker stuck with the giant one). Chunks are
// dealt round-robin into per-worker queues; each worker drains its own
// queue via an atomic cursor, then steals from the other queues' cursors.
// A fetch-add on a victim's cursor claims a chunk exactly once, so
// stealing needs no locks and the details merge stays deterministic.

// chunk is a contiguous run order[lo:hi] of a level-grouped cluster order.
type chunk struct{ lo, hi int32 }

// workQueue is one worker's dealt chunk list plus the atomic claim cursor
// owner and thieves race on. Padded so cursors of adjacent queues do not
// false-share a cache line.
type workQueue struct {
	chunks []chunk
	next   atomic.Int32
	_      [56]byte
}

const (
	// minChunkArcs floors the chunk size: below this the per-chunk
	// scheduling overhead (one fetch-add) rivals the analysis work.
	minChunkArcs = 1024
	// chunksPerWorker oversizes the chunk count relative to the worker
	// count so stealing can rebalance uneven levels.
	chunksPerWorker = 4
)

// buildChunks cuts the level-grouped cluster order into contiguous chunks
// of roughly even arc counts. Chunks never span a level boundary, keeping
// each worker's traversal cache-linear within the arc backing.
func buildChunks(cd *cluster.CompiledDesign, order []int32, workers int) []chunk {
	total := 0
	for _, id := range order {
		total += len(cd.CC[id].Arcs)
	}
	target := total / (workers * chunksPerWorker)
	if target < minChunkArcs {
		target = minChunkArcs
	}
	chunks := make([]chunk, 0, workers*chunksPerWorker+cd.NumLevels())
	for i := 0; i < len(order); {
		lvl := cd.Level[order[i]]
		start := i
		acc := 0
		for i < len(order) && cd.Level[order[i]] == lvl {
			acc += len(cd.CC[order[i]].Arcs)
			i++
			if acc >= target {
				break
			}
		}
		chunks = append(chunks, chunk{int32(start), int32(i)})
	}
	return chunks
}

// runLevelScheduled executes fn once per cluster id in order, spread
// across the worker pool with stealing. fn must be safe for concurrent
// invocation on distinct ids; each invocation receives the calling
// worker's private scratch arena. check (optional) runs before every
// cluster; its first error stops all workers and is returned.
func runLevelScheduled(cd *cluster.CompiledDesign, st *AnalysisState, order []int32, workers int, check func() error, fn func(id int32, buf *[]clock.Time)) error {
	chunks := buildChunks(cd, order, workers)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	mParallelRuns.Inc()
	mParallelWorkers.Add(int64(workers))
	queues := make([]workQueue, workers)
	for i, c := range chunks {
		q := &queues[i%workers]
		q.chunks = append(q.chunks, c)
	}

	// Utilisation accounting reads the clock per worker, so it is gated
	// on the telemetry switch rather than paid unconditionally.
	instrument := telemetry.Enabled()
	var wallStart time.Time
	if instrument {
		wallStart = time.Now()
	}
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// One scratch arena per worker, reused across every cluster
			// and level this worker executes.
			buf := st.getScratch()
			defer st.putScratch(buf)
			var t0 time.Time
			if instrument {
				t0 = time.Now()
			}
			var steals int64
			// Own queue first (vi=0), then steal in ring order.
			for vi := 0; vi < workers && !stop.Load(); vi++ {
				q := &queues[(k+vi)%workers]
				for !stop.Load() {
					ci := int(q.next.Add(1)) - 1
					if ci >= len(q.chunks) {
						break
					}
					if vi != 0 {
						steals++
					}
					c := q.chunks[ci]
					for _, id := range order[c.lo:c.hi] {
						if check != nil {
							if err := check(); err != nil {
								fail(err)
								return
							}
						}
						fn(id, buf)
					}
				}
			}
			mSteals.Add(steals)
			if instrument {
				busy := time.Since(t0)
				mWorkerBusyNs.Add(busy.Nanoseconds())
				mWorkerBusy.Observe(busy)
			}
		}(k)
	}
	wg.Wait()
	if instrument {
		mParallelWallNs.Add(time.Since(wallStart).Nanoseconds())
	}
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// AnalyzeParallel is Analyze with the per-cluster work spread across the
// given number of workers by the level-scheduled work-stealing scheduler.
// Clusters touch disjoint slices of the result, so no locking is needed
// beyond the final deterministic merge of the pass details. Results are
// identical to Analyze.
func AnalyzeParallel(cd *cluster.CompiledDesign, st *AnalysisState, workers int) *Result {
	if workers <= 1 || len(cd.CC) <= 1 {
		return Analyze(cd, st)
	}
	res, _ := analyzeLevelScheduled(nil, cd, st, workers)
	return res
}

// AnalyzeParallelContext is AnalyzeParallel with cancellation, checked
// before every cluster on every worker. On expiry the partial result is
// discarded and the cause returned, exactly like AnalyzeContext.
func AnalyzeParallelContext(ctx context.Context, cd *cluster.CompiledDesign, st *AnalysisState, workers int) (*Result, error) {
	if workers <= 1 || len(cd.CC) <= 1 {
		return AnalyzeContext(ctx, cd, st)
	}
	mAnalyses.Inc()
	_, sp := span.Start(ctx, "sta.analyze_parallel")
	sp.AnnotateInt("clusters", len(cd.CC))
	sp.AnnotateInt("levels", cd.NumLevels())
	sp.AnnotateInt("workers", workers)
	defer sp.End()
	return analyzeLevelScheduled(interrupt(ctx), cd, st, workers)
}

func analyzeLevelScheduled(check func() error, cd *cluster.CompiledDesign, st *AnalysisState, workers int) (*Result, error) {
	res := newResult(cd)
	// Every worker writes its clusters' details into a disjoint slot of
	// this table; the merge below runs in cluster order, so the pass list
	// is byte-for-byte the sequential one.
	details := make([][]PassDetail, len(cd.CC))
	err := runLevelScheduled(cd, st, cd.LevelOrder, workers, check, func(id int32, buf *[]clock.Time) {
		details[id] = analyzeClusterScratch(cd, cd.CC[id], st, res, nil, buf)
	})
	if err != nil {
		return nil, err
	}
	for _, d := range details {
		res.Passes = append(res.Passes, d...)
	}
	return res, nil
}

// recomputeParallelThreshold is the dirty-set size (clusters) below which
// the parallel dirty walk falls back to the sequential recompute: small
// dirty sets are dominated by per-goroutine overhead, and the sequential
// path preserves the steady-state allocation guarantee of delay edits.
const recomputeParallelThreshold = 64

// RecomputeParallel is Recompute with the dirty-cluster walk dispatched
// through the level-scheduled scheduler: dirty clusters are grouped by
// DAG level (then cluster id, i.e. arc-backing order) and chunked by arc
// count across the workers. Below recomputeParallelThreshold dirty
// clusters — or with a single worker — it is exactly Recompute, keeping
// small incremental edits allocation-free.
func RecomputeParallel(cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int, workers int) {
	recomputeParallel(nil, cd, st, res, clusterIDs, workers)
}

// RecomputeParallelContext is RecomputeParallel with cancellation. On a
// non-nil error res has been partially rebuilt and must be discarded, as
// with RecomputeContext.
func RecomputeParallelContext(ctx context.Context, cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int, workers int) error {
	if workers <= 1 || len(clusterIDs) < recomputeParallelThreshold {
		return RecomputeContext(ctx, cd, st, res, clusterIDs)
	}
	_, sp := span.Start(ctx, "sta.recompute_parallel")
	sp.AnnotateInt("dirtyClusters", len(clusterIDs))
	sp.AnnotateInt("workers", workers)
	defer sp.End()
	return recomputeParallel(interrupt(ctx), cd, st, res, clusterIDs, workers)
}

func recomputeParallel(check func() error, cd *cluster.CompiledDesign, st *AnalysisState, res *Result, clusterIDs []int, workers int) error {
	if workers <= 1 || len(clusterIDs) < recomputeParallelThreshold {
		return recompute(cd, st, res, clusterIDs, check)
	}
	mRecomputes.Inc()
	resetDirty(cd, st, res, clusterIDs)
	// Group the dirty set by (level, id): the same traversal order the
	// full parallel analysis uses, restricted to the dirty clusters.
	order := make([]int32, 0, len(clusterIDs))
	for _, lo := range cd.LevelOrder {
		if st.isDirty(int(lo)) {
			order = append(order, lo)
		}
	}
	details := make([][]PassDetail, len(cd.CC))
	err := runLevelScheduled(cd, st, order, workers, check, func(id int32, buf *[]clock.Time) {
		details[id] = analyzeClusterScratch(cd, cd.CC[id], st, res, nil, buf)
	})
	if err != nil {
		return err
	}
	// Append in ascending cluster id (arc-backing order) so the pass list
	// reaches restorePassOrder nearly sorted, exactly as the sequential
	// walk leaves it when callers pass sorted ids.
	for id := range details {
		if details[id] != nil {
			res.Passes = append(res.Passes, details[id]...)
		}
	}
	restorePassOrder(res)
	return nil
}
