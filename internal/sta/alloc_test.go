package sta

import (
	"testing"

	"hummingbird/internal/cluster"
	"hummingbird/internal/workload"
)

// TestRecomputeAllocs is the allocation-regression guard for the hot
// incremental path: a steady-state Recompute of one dirty cluster must stay
// within a handful of allocations — the per-cluster pass-detail backing and
// slice growth, nothing else. The dirty bitset, the scratch arenas and the
// pass ordering are all reused state; a regression here (a per-call map, a
// per-pass make, a sort.Slice closure) shows up immediately.
func TestRecomputeAllocs(t *testing.T) {
	nw := buildWorkload(t, mustGen(workload.ALU()))
	cd := cluster.Compile(nw)
	st := NewState(cd)
	res := Analyze(cd, st)
	ids := []int{0}
	// Warm the pooled scratch so the measurement sees steady state.
	Recompute(cd, st, res, ids)

	allocs := testing.AllocsPerRun(50, func() {
		Recompute(cd, st, res, ids)
	})
	// One backing per recomputed cluster's pass details (they escape into
	// the result), plus margin for an occasional pool refill after GC.
	const limit = 3
	if allocs > limit {
		t.Fatalf("Recompute allocates %.1f times per run, limit %d", allocs, limit)
	}
}
