package sta

import (
	"context"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"hummingbird/internal/cluster"
	"hummingbird/internal/workload"
)

// socFixture compiles a small SoC grid: wide levels, cross-chain edges,
// multiple clock domains and gated stages — the shape the level scheduler
// is built for, at a size -race can afford.
func socFixture(t *testing.T, blocks, depth, domains int, seed int64) *cluster.CompiledDesign {
	t.Helper()
	nw := buildWorkload(t, mustGen(workload.SoC(blocks, depth, domains, seed)))
	return cluster.Compile(nw)
}

// TestAnalyzeParallelSoCEquivalence: randomized seeds and worker counts on
// the SoC grid must reproduce the sequential result exactly, pass details
// included. Under -race this is the scheduler's main concurrency probe.
func TestAnalyzeParallelSoCEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(0x50C))
	for trial := 0; trial < 4; trial++ {
		seed := r.Int63()
		cd := socFixture(t, 24, 6, 1+trial%4, seed)
		st := NewState(cd)
		seq := Analyze(cd, st)
		for _, workers := range []int{2, 3, 1 + r.Intn(8), 8} {
			par := AnalyzeParallel(cd, st, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("trial %d seed %#x workers %d: parallel result differs", trial, seed, workers)
			}
		}
	}
}

// TestRecomputeParallelSoCEquivalence: dirty sets above the parallel
// threshold, recomputed through the level scheduler, must leave the result
// deeply identical to the sequential dirty walk.
func TestRecomputeParallelSoCEquivalence(t *testing.T) {
	cd := socFixture(t, 96, 8, 4, 0xD1)
	if len(cd.CC) < recomputeParallelThreshold {
		t.Fatalf("fixture has %d clusters, below the parallel threshold %d",
			len(cd.CC), recomputeParallelThreshold)
	}
	st := NewState(cd)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		// Random dirty set over the threshold; ascending ids, as the
		// incremental engine passes them.
		n := recomputeParallelThreshold + r.Intn(len(cd.CC)-recomputeParallelThreshold)
		perm := r.Perm(len(cd.CC))[:n]
		ids := append([]int(nil), perm...)
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			}
		}
		seqRes := Analyze(cd, st)
		parRes := Analyze(cd, st)
		Recompute(cd, st, seqRes, ids)
		for _, workers := range []int{2, 4, 8} {
			RecomputeParallel(cd, st, parRes, ids, workers)
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Fatalf("trial %d workers %d: parallel recompute differs (%d dirty)", trial, workers, n)
			}
		}
	}
}

// countdownCtx cancels itself after a fixed number of Err checks: a
// deterministic way to land a cancellation in the middle of a parallel
// run, with workers already spread across the level order.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestAnalyzeParallelCancelMidLevel: a context that expires partway
// through the cluster walk must stop every worker, discard the partial
// result and surface the cause — matching AnalyzeContext's contract.
func TestAnalyzeParallelCancelMidLevel(t *testing.T) {
	cd := socFixture(t, 48, 6, 2, 0xCA)
	st := NewState(cd)
	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(int64(len(cd.CC) / 2))
	res, err := AnalyzeParallelContext(ctx, cd, st, 4)
	if err == nil {
		t.Fatal("mid-level cancellation returned no error")
	}
	if res != nil {
		t.Fatal("cancelled analysis leaked a partial result")
	}
	// The state must remain usable: a fresh uncancelled run still matches
	// the sequential analysis.
	seq := Analyze(cd, st)
	par := AnalyzeParallel(cd, st, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("analysis after cancellation differs from sequential")
	}
}

// TestRecomputeParallelCancel: same contract for the incremental path.
func TestRecomputeParallelCancel(t *testing.T) {
	cd := socFixture(t, 96, 8, 4, 0xCB)
	st := NewState(cd)
	res := Analyze(cd, st)
	ids := make([]int, len(cd.CC))
	for i := range ids {
		ids[i] = i
	}
	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(int64(len(ids) / 2))
	if err := RecomputeParallelContext(ctx, cd, st, res, ids, 4); err == nil {
		t.Fatal("mid-level cancellation returned no error")
	}
}

// TestRecomputeParallelSmallSetAllocs: below the work threshold the
// parallel entry point must be the sequential fast path, preserving the
// steady-state allocation guarantee of small delay edits even when the
// caller asks for many workers.
func TestRecomputeParallelSmallSetAllocs(t *testing.T) {
	nw := buildWorkload(t, mustGen(workload.ALU()))
	cd := cluster.Compile(nw)
	st := NewState(cd)
	res := Analyze(cd, st)
	ids := []int{0}
	RecomputeParallel(cd, st, res, ids, 8)

	allocs := testing.AllocsPerRun(50, func() {
		RecomputeParallel(cd, st, res, ids, 8)
	})
	const limit = 3
	if allocs > limit {
		t.Fatalf("small-set RecomputeParallel allocates %.1f times per run, limit %d", allocs, limit)
	}
}
