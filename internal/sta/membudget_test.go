package sta

import (
	"testing"
	"unsafe"

	"hummingbird/internal/cluster"
	"hummingbird/internal/workload"
)

// memBudgetBytesPerCell pins the steady-state footprint of the analysis
// engine: the compiled design (shared CSR arc backing, per-cluster index
// arrays, level schedule) plus one analysis state (offset vector, dirty
// bitset, one scratch arena), per leaf cell, on the 100k-cell SoC grid.
// The value holds ~50% headroom over the measured figure (~220 B/cell)
// so it trips on a representation regression — a duplicated arc backing,
// a per-arc map, per-cluster level copies — not on layout jitter.
const memBudgetBytesPerCell = 330

// compiledFootprint sums the backing arrays of the compiled design and
// analysis state. Heap deltas cannot measure this: Compile rebinds the
// source clusters onto its shared arc backing and frees their originals,
// so explicit accounting is the stable measurement.
func compiledFootprint(cd *cluster.CompiledDesign, st *AnalysisState) int64 {
	var total int64
	slice := func(n, elem int) { total += int64(24 + n*elem) }
	slice(len(cd.Arcs), int(unsafe.Sizeof(cluster.Arc{})))
	for _, cc := range cd.CC {
		total += int64(unsafe.Sizeof(*cc))
		for _, s := range [][]int32{cc.OrderLocal, cc.ArcStart, cc.ArcIdx,
			cc.FromLocal, cc.ToLocal, cc.InLocal, cc.OutLocal} {
			slice(len(s), 4)
		}
	}
	for _, ec := range cd.ElemClusters {
		slice(len(ec), 8)
	}
	slice(len(cd.InitialOdz), 8)
	slice(len(cd.Level), 4)
	slice(len(cd.LevelStart), 4)
	slice(len(cd.LevelOrder), 4)
	slice(len(st.Odz), 8)
	slice(len(st.dirty), 8)
	slice(4*cd.MaxClusterNets, 8) // one pooled scratch arena
	return total
}

// TestCompiledMemoryPerCellBudget builds the 100k-cell SoC, compiles it
// and allocates an analysis state, and holds the engine's bytes per leaf
// cell under the pinned budget. CI runs this on every push.
func TestCompiledMemoryPerCellBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-cell build in -short mode")
	}
	d := mustGen(workload.SoCCells(100_000, 1))
	nw := buildWorkload(t, d)
	cells := len(d.Instances) // flat design: every instance is a leaf cell
	cd := cluster.Compile(nw)
	st := NewState(cd)

	live := compiledFootprint(cd, st)
	perCell := live / int64(cells)
	t.Logf("%d cells, %d clusters, %d levels, %d arcs: %d bytes, %d B/cell (budget %d)",
		cells, len(cd.CC), cd.NumLevels(), len(cd.Arcs), live, perCell, memBudgetBytesPerCell)
	if perCell > memBudgetBytesPerCell {
		t.Fatalf("compiled design + analysis state = %d B/cell, budget %d B/cell", perCell, memBudgetBytesPerCell)
	}
}
