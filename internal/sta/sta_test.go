package sta

import (
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/netlist"
)

// testLib builds a deliberately simple library: constant (zero-slope)
// delays and zero pin capacitance, so every expected number in these tests
// can be computed by hand.
func testLib() *celllib.Library {
	l := celllib.NewLibrary("sta-test")
	// Test fixture: a bad cell is a broken test, so panicking is fine here.
	mustAdd := func(c *celllib.Cell) {
		if err := l.Add(c); err != nil {
			panic(err)
		}
	}
	fixed := func(rise, fall clock.Time) celllib.ArcDelay {
		return celllib.ArcDelay{
			MaxRise: celllib.Linear{Intrinsic: rise},
			MaxFall: celllib.Linear{Intrinsic: fall},
			MinRise: celllib.Linear{Intrinsic: rise / 2},
			MinFall: celllib.Linear{Intrinsic: fall / 2},
		}
	}
	mustAdd(&celllib.Cell{
		Name: "BUFD", Kind: celllib.Comb, Function: "Y=A", Area: 1, Drive: 1,
		Pins: []celllib.Pin{{Name: "A", Dir: celllib.In}, {Name: "Y", Dir: celllib.Out}},
		Arcs: []celllib.Arc{{From: "A", To: "Y", Sense: celllib.PositiveUnate, Delay: fixed(100, 100)}},
	})
	mustAdd(&celllib.Cell{
		Name: "INVD", Kind: celllib.Comb, Function: "Y=!A", Area: 1, Drive: 1,
		Pins: []celllib.Pin{{Name: "A", Dir: celllib.In}, {Name: "Y", Dir: celllib.Out}},
		Arcs: []celllib.Arc{{From: "A", To: "Y", Sense: celllib.NegativeUnate, Delay: fixed(100, 60)}},
	})
	mustAdd(&celllib.Cell{
		Name: "XORD", Kind: celllib.Comb, Function: "Y=A^B", Area: 1, Drive: 1,
		Pins: []celllib.Pin{
			{Name: "A", Dir: celllib.In}, {Name: "B", Dir: celllib.In},
			{Name: "Y", Dir: celllib.Out},
		},
		Arcs: []celllib.Arc{
			{From: "A", To: "Y", Sense: celllib.NonUnate, Delay: fixed(100, 100)},
			{From: "B", To: "Y", Sense: celllib.NonUnate, Delay: fixed(100, 100)},
		},
	})
	zeroSync := &celllib.SyncTiming{Dsetup: 0, Ddz: 0, Dcz: 0}
	mustAdd(&celllib.Cell{
		Name: "LAT", Kind: celllib.Transparent, Function: "latch", Area: 2, Drive: 1,
		Pins: []celllib.Pin{
			{Name: "D", Dir: celllib.In},
			{Name: "G", Dir: celllib.In, Role: celllib.Control},
			{Name: "Q", Dir: celllib.Out},
		},
		Arcs: []celllib.Arc{{From: "D", To: "Q", Sense: celllib.PositiveUnate, Delay: fixed(0, 0)}},
		Sync: zeroSync,
	})
	mustAdd(&celllib.Cell{
		Name: "FFD", Kind: celllib.EdgeTriggered, Function: "dff", Area: 2, Drive: 1,
		Pins: []celllib.Pin{
			{Name: "D", Dir: celllib.In},
			{Name: "CK", Dir: celllib.In, Role: celllib.Control},
			{Name: "Q", Dir: celllib.Out},
		},
		Arcs: []celllib.Arc{{From: "D", To: "Q", Sense: celllib.PositiveUnate, Delay: fixed(0, 0)}},
		Sync: zeroSync,
	})
	return l
}

func buildNet(t *testing.T, lib *celllib.Library, text string) *cluster.Network {
	t.Helper()
	d, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	cs, err := d.ClockSet()
	if err != nil {
		t.Fatal(err)
	}
	calc, err := delaycalc.New(lib, d, delaycalc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := cluster.Build(lib, d, cs, calc)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func elemIdx(t *testing.T, nw *cluster.Network, name string) int {
	t.Helper()
	ids := nw.ElemsOf(name)
	if len(ids) == 0 {
		t.Fatalf("no elements for %s", name)
	}
	return ids[0]
}

const twoPhaseText = `
design twophase
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi1 edge rise offset 0
inst g1 BUFD A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 BUFD A=q1 Y=n2
inst l2 FFD D=n2 CK=phi2 Q=q2
inst g3 BUFD A=q2 Y=OUT
end
`

// analyzeNet compiles a network and analyzes it on a fresh state.
func analyzeNet(nw *cluster.Network) *Result {
	cd := cluster.Compile(nw)
	return Analyze(cd, NewState(cd))
}

func TestTwoPhaseHandComputedSlacks(t *testing.T) {
	nw := buildNet(t, testLib(), twoPhaseText)
	res := analyzeNet(nw)

	// Cluster IN→l1.D: IN asserts at 90ns; path delay 100ps; l1 closes at
	// phi1.fall (40ns) + min(Odc=0, Odz=0) = 40ns, one period later in the
	// window. Slack = (40ns + 100ns − 90ns) − 100ps = 49.9ns.
	l1 := elemIdx(t, nw, "l1")
	if got := res.InSlack[l1]; got != 49900 {
		t.Fatalf("InSlack(l1) = %v, want 49.9ns", got)
	}
	in := elemIdx(t, nw, "IN")
	if got := res.OutSlack[in]; got != 49900 {
		t.Fatalf("OutSlack(IN) = %v, want 49.9ns", got)
	}

	// Cluster q1→l2.D: l1 asserts at lead(0) + max(Ozc=0, Ozd=W+Odz=40ns)
	// = 40ns; l2 closes at 90ns. Slack = 90ns − 40ns − 100ps = 49.9ns.
	l2 := elemIdx(t, nw, "l2")
	if got := res.InSlack[l2]; got != 49900 {
		t.Fatalf("InSlack(l2) = %v, want 49.9ns", got)
	}
	if got := res.OutSlack[l1]; got != 49900 {
		t.Fatalf("OutSlack(l1) = %v, want 49.9ns", got)
	}

	// Cluster q2→OUT: l2 asserts at 90ns (trail, Dcz=0); OUT closes at
	// phi1.rise (0 ≡ 100ns): slack = 10ns − 100ps = 9.9ns.
	out := elemIdx(t, nw, "OUT")
	if got := res.InSlack[out]; got != 9900 {
		t.Fatalf("InSlack(OUT) = %v, want 9.9ns", got)
	}
	if got := res.OutSlack[l2]; got != 9900 {
		t.Fatalf("OutSlack(l2) = %v, want 9.9ns", got)
	}
	if got := res.WorstSlack(); got != 9900 {
		t.Fatalf("WorstSlack = %v, want 9.9ns", got)
	}
}

func TestOffsetShiftMovesSlack(t *testing.T) {
	nw := buildNet(t, testLib(), twoPhaseText)
	l1 := elemIdx(t, nw, "l1")
	l2 := elemIdx(t, nw, "l2")
	// Slide l1's DOF 10ns earlier: upstream loses 10ns, downstream gains.
	cd := cluster.Compile(nw)
	st := NewState(cd)
	st.Odz[l1] -= 10000
	res := Analyze(cd, st)
	if got := res.InSlack[l1]; got != 39900 {
		t.Fatalf("InSlack(l1) after shift = %v, want 39.9ns", got)
	}
	if got := res.InSlack[l2]; got != 59900 {
		t.Fatalf("InSlack(l2) after shift = %v, want 59.9ns", got)
	}
}

func TestRiseFallSeparation(t *testing.T) {
	// One inverting arc: the output RISE settles 100ps after the input
	// FALL; the output FALL settles 60ps after the input RISE. Both input
	// transitions assert together, so ready(out) = assert + max(100,60)
	// only for the rise; slack is limited by the rise transition.
	lib := testLib()
	nw := buildNet(t, lib, `
design rf
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 INVD A=IN Y=OUT
end
`)
	res := analyzeNet(nw)
	out := elemIdx(t, nw, "OUT")
	// IN asserts 40ns, OUT closes 90ns: slack = 50ns − 100ps (rise-limited).
	if got := res.InSlack[out]; got != 49900 {
		t.Fatalf("InSlack(OUT) = %v, want 49.9ns", got)
	}
	// The net slack of OUT reflects the rise-limited transition too.
	if got := res.NetSlack[nw.NetIdx["OUT"]]; got != 49900 {
		t.Fatalf("NetSlack(OUT) = %v", got)
	}
}

func TestInverterChainRiseFall(t *testing.T) {
	// Two inverting arcs: rise and fall both become assert+160 at the
	// second output (100 then 60, or 60 then 100).
	lib := testLib()
	nw := buildNet(t, lib, `
design rf2
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 INVD A=IN Y=n1
inst g2 INVD A=n1 Y=OUT
end
`)
	res := analyzeNet(nw)
	out := elemIdx(t, nw, "OUT")
	if got := res.InSlack[out]; got != 50000-160 {
		t.Fatalf("InSlack(OUT) = %v, want %v", got, 50000-160)
	}
}

func TestNonUnatePropagation(t *testing.T) {
	lib := testLib()
	nw := buildNet(t, lib, `
design nu
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input A clock phi1 edge fall offset 0
input B clock phi1 edge rise offset 0
output OUT clock phi2 edge fall offset 0
inst g1 XORD A=A B=B Y=OUT
end
`)
	res := analyzeNet(nw)
	out := elemIdx(t, nw, "OUT")
	// A asserts at 40ns, B at 0: worst arrival 40ns + 100ps.
	if got := res.InSlack[out]; got != 50000-100 {
		t.Fatalf("InSlack(OUT) = %v", got)
	}
	// B's own slack is looser: req(B) = 90ns − 100ps, assert 0... but the
	// ready at OUT is dominated by A; B's output-terminal slack uses the
	// required time at B: 89.9ns − 0 = 89.9ns.
	b := elemIdx(t, nw, "B")
	if got := res.OutSlack[b]; got != 89900 {
		t.Fatalf("OutSlack(B) = %v, want 89.9ns", got)
	}
}

func TestMultiPassMinimumWins(t *testing.T) {
	// Figure-1 style: shared gate, captures on two phases. The net slack
	// of the shared net is the min over both passes.
	lib := testLib()
	nw := buildNet(t, lib, `
design f1
clock phi1 period 200ns rise 0 fall 30ns
clock phi2 period 200ns rise 50ns fall 80ns
clock phi3 period 200ns rise 100ns fall 130ns
clock phi4 period 200ns rise 150ns fall 180ns
input A clock phi4 edge fall offset 0
input B clock phi2 edge fall offset 0
output Y1 clock phi3 edge rise offset 0
output Y2 clock phi1 edge rise offset 0
inst la LAT D=A G=phi1 Q=qa
inst lb LAT D=B G=phi3 Q=qb
inst g XORD A=qa B=qb Y=m
inst lc LAT D=m G=phi2 Q=qc
inst ld LAT D=m G=phi4 Q=qd
inst gc BUFD A=qc Y=Y1
inst gd BUFD A=qd Y=Y2
end
`)
	res := analyzeNet(nw)
	// Pass structure sanity: the m-cluster runs two passes.
	mid := nw.NetIdx["m"]
	var mPasses int
	for _, p := range res.Passes {
		for _, n := range p.Nets {
			if n == mid {
				mPasses++
				break
			}
		}
	}
	if mPasses != 2 {
		t.Fatalf("m analyzed in %d passes, want 2", mPasses)
	}
	// Hand numbers: la asserts lead(0)+Ozd(W=30ns) = 30ns; lb asserts
	// 100+30 = 130ns. lc closes at 80ns, ld at 180ns.
	// Pass for lc: window must order both asserts before 80ns-closure:
	// ready(m) = max(30, 130→previous cycle) + 100ps. In lc's window
	// (break at 80ns): posA(la.assert=0)=120ns→wait, ideal assert is 0 and
	// offset 30ns: pos = (0−80)mod200 + 30 = 150ns; posA(lb)=(100−80)+30=50ns;
	// posC = 200ns. ready(m)=150.1ns, slack(lc) = 49.9ns.
	lc := elemIdx(t, nw, "lc")
	if got := res.InSlack[lc]; got != 49900 {
		t.Fatalf("InSlack(lc) = %v, want 49.9ns", got)
	}
	// Symmetric for ld (break at 180): posA(la)=(0−180)mod200+30=50,
	// posA(lb)=(100−180)mod200+30=150, posC=200 → slack 49.9ns.
	ld := elemIdx(t, nw, "ld")
	if got := res.InSlack[ld]; got != 49900 {
		t.Fatalf("InSlack(ld) = %v, want 49.9ns", got)
	}
	// Net m's merged slack is the min over passes; here symmetric.
	if got := res.NetSlack[mid]; got != 49900 {
		t.Fatalf("NetSlack(m) = %v", got)
	}
}

func TestUnconstrainedElements(t *testing.T) {
	// A latch whose Q dangles: output terminal unconstrained (+Inf).
	lib := testLib()
	nw := buildNet(t, lib, `
design dangle
clock phi1 period 100ns rise 0 fall 40ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge fall offset 0
inst l1 LAT D=IN G=phi1 Q=q1
inst g1 BUFD A=IN Y=OUT
end
`)
	res := analyzeNet(nw)
	l1 := elemIdx(t, nw, "l1")
	if res.OutSlack[l1] != clock.Inf {
		t.Fatalf("dangling Q slack = %v, want +Inf", res.OutSlack[l1])
	}
	if res.InSlack[l1] == clock.Inf {
		t.Fatal("l1 input should be constrained")
	}
}

func TestSameEdgeFFPath(t *testing.T) {
	// FF→FF on one clock edge: D = exactly one overall period (§4).
	lib := testLib()
	nw := buildNet(t, lib, `
design ffpipe
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 FFD D=IN CK=phi Q=q1
inst g1 BUFD A=q1 Y=n1
inst f2 FFD D=n1 CK=phi Q=q2
inst g2 BUFD A=q2 Y=OUT
end
`)
	res := analyzeNet(nw)
	f2 := elemIdx(t, nw, "f2")
	// Launch 40ns, capture 40ns+T: slack = 100ns − 100ps.
	if got := res.InSlack[f2]; got != 100000-100 {
		t.Fatalf("InSlack(f2) = %v, want %v", got, 100000-100)
	}
}

func TestPathDelayMaxMin(t *testing.T) {
	lib := testLib()
	nw := buildNet(t, lib, `
design pd
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUFD A=IN Y=n1
inst g2 BUFD A=n1 Y=n2
inst g3 BUFD A=IN Y=n2x
inst g4 XORD A=n2 B=n2x Y=OUT
end
`)
	cl := nw.Clusters[0]
	from, to := nw.NetIdx["IN"], nw.NetIdx["OUT"]
	if d := PathDelayMax(cl, from, to); d != 300 {
		t.Fatalf("PathDelayMax = %v, want 300", d)
	}
	// Min path goes through g3 (one buffer, min 50) then XOR (min 50).
	if d := PathDelayMin(cl, from, to); d != 100 {
		t.Fatalf("PathDelayMin = %v, want 100", d)
	}
	if d := PathDelayMax(cl, to, from); d != -1 {
		t.Fatalf("reverse path = %v, want -1", d)
	}
	if d := PathDelayMax(cl, from, from); d != 0 {
		t.Fatalf("self path = %v, want 0", d)
	}
}

func TestPortOffsetsRespected(t *testing.T) {
	lib := testLib()
	nw := buildNet(t, lib, `
design offs
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 3ns
output OUT clock phi2 edge fall offset -2ns
inst g1 BUFD A=IN Y=OUT
end
`)
	res := analyzeNet(nw)
	out := elemIdx(t, nw, "OUT")
	// assert 43ns, close 88ns, delay 100ps: slack 44.9ns.
	if got := res.InSlack[out]; got != 44900 {
		t.Fatalf("InSlack(OUT) = %v, want 44.9ns", got)
	}
}

func TestMinElemSlack(t *testing.T) {
	nw := buildNet(t, testLib(), twoPhaseText)
	res := analyzeNet(nw)
	l1 := elemIdx(t, nw, "l1")
	want := res.InSlack[l1]
	if res.OutSlack[l1] < want {
		want = res.OutSlack[l1]
	}
	if got := res.MinElemSlack(l1); got != want {
		t.Fatalf("MinElemSlack = %v, want %v", got, want)
	}
}
