package syncelem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
)

func cs2(t *testing.T) *clock.Set {
	t.Helper()
	s, err := clock.NewSet(
		clock.Signal{Name: "phi1", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 20 * clock.Ns},
		clock.Signal{Name: "phi2", Period: 50 * clock.Ns, RiseAt: 25 * clock.Ns, FallAt: 45 * clock.Ns},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func transparentTiming() *celllib.SyncTiming {
	return &celllib.SyncTiming{Dsetup: 150, Ddz: 280, Dcz: 320}
}

// TestTransparentOffsets_PaperExample reproduces the worked example of §5
// (Figure 3 context): a transparent latch with no internal delays,
// controlled by a 20ns clock pulse each period; the output is asserted 5ns
// after the start of the pulse, so Ozd = 5ns and Odz = −15ns. A 2ns delay
// between the clock source and the control input gives Oat = Ozc = 2ns.
func TestTransparentOffsets_PaperExample(t *testing.T) {
	cs, err := clock.NewSet(clock.Signal{Name: "phi", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 20 * clock.Ns})
	if err != nil {
		t.Fatal(err)
	}
	st := &celllib.SyncTiming{Dsetup: 0, Ddz: 0, Dcz: 0}
	elems, err := Build("lat", celllib.Transparent, st, cs, 0, false, 2*clock.Ns, 2*clock.Ns)
	if err != nil {
		t.Fatal(err)
	}
	e := elems[0]
	if e.Width != 20*clock.Ns {
		t.Fatalf("W = %v, want 20ns", e.Width)
	}
	// Set the DOF so the output asserts 5ns after the leading edge.
	e.Odz = -15 * clock.Ns
	if err := e.Validate(); err != nil {
		t.Fatalf("paper example offsets rejected: %v", err)
	}
	if e.Ozd() != 5*clock.Ns {
		t.Fatalf("Ozd = %v, want 5ns", e.Ozd())
	}
	if e.Oat() != 2*clock.Ns || e.Ozc() != 2*clock.Ns {
		t.Fatalf("Oat/Ozc = %v/%v, want 2ns/2ns", e.Oat(), e.Ozc())
	}
	// Effective times: assertion = leading(0) + max(2, 5) = 5ns;
	// closure = trailing(20) + min(0, −15) = 5ns.
	if e.OutputAssert() != 5*clock.Ns {
		t.Fatalf("OutputAssert = %v, want 5ns", e.OutputAssert())
	}
	if e.InputClosure() != 5*clock.Ns {
		t.Fatalf("InputClosure = %v, want 5ns", e.InputClosure())
	}
}

func TestBuildTransparentDefaults(t *testing.T) {
	cs := cs2(t)
	elems, err := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	// phi1's 100ns period equals the overall period: one pulse, one element.
	if len(elems) != 1 {
		t.Fatalf("got %d elements, want 1", len(elems))
	}
	e := elems[0]
	if e.IdealAssert != 0 || e.IdealClose != 20*clock.Ns {
		t.Fatalf("ideal times = %v/%v", e.IdealAssert, e.IdealClose)
	}
	// Initial DOF at the latest legal closure.
	if e.Odz != -e.Ddz {
		t.Fatalf("initial Odz = %v, want %v", e.Odz, -e.Ddz)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !e.HasDOF() {
		t.Fatal("transparent latch without DOF")
	}
	// phi1 has a 100ns period while the overall period is 100ns: wait, the
	// set's overall period is lcm(100,50)=100, so phi1 contributes 1 pulse.
	if len(elems) != cs.PulseCount(0) {
		t.Fatalf("replication count %d != pulse count %d", len(elems), cs.PulseCount(0))
	}
}

func TestBuildReplication(t *testing.T) {
	cs := cs2(t)
	// phi2 (50ns period) pulses twice per overall 100ns period.
	elems, err := Build("l2", celllib.Transparent, transparentTiming(), cs, 1, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 2 {
		t.Fatalf("replicas = %d, want 2", len(elems))
	}
	if elems[0].IdealAssert != 25*clock.Ns || elems[1].IdealAssert != 75*clock.Ns {
		t.Fatalf("assert times %v %v", elems[0].IdealAssert, elems[1].IdealAssert)
	}
	if elems[0].IdealClose != 45*clock.Ns || elems[1].IdealClose != 95*clock.Ns {
		t.Fatalf("close times %v %v", elems[0].IdealClose, elems[1].IdealClose)
	}
	if elems[0].Name() != "l2" || elems[1].Name() != "l2[1]" {
		t.Fatalf("names %q %q", elems[0].Name(), elems[1].Name())
	}
	// Independent DOFs.
	elems[0].Odz = elems[0].shiftAt(elems[0].Odz, -100)
	if elems[1].Odz == elems[0].Odz {
		t.Fatal("replica DOFs aliased")
	}
}

func TestBuildInvertedControl(t *testing.T) {
	cs := cs2(t)
	// Inverted control: element is transparent while phi1 is LOW, so the
	// effective pulse leads at phi1's fall (20ns) and trails at the next
	// rise (100ns ≡ 0, occurrence wraps).
	elems, err := Build("ln", celllib.Transparent, transparentTiming(), cs, 0, true, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := elems[0]
	if !e.Inverted {
		t.Fatal("inversion flag lost")
	}
	if e.LeadAt != 20*clock.Ns {
		t.Fatalf("lead = %v, want 20ns", e.LeadAt)
	}
	if e.TrailAt != 0 {
		t.Fatalf("trail = %v, want 0 (wrapped)", e.TrailAt)
	}
	if e.Width != 80*clock.Ns {
		t.Fatalf("width = %v, want 80ns", e.Width)
	}
	// ActiveLow cell with non-inverted path behaves the same way.
	st := transparentTiming()
	st.ActiveLow = true
	elems2, err := Build("ln2", celllib.Transparent, st, cs, 0, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elems2[0].LeadAt != 20*clock.Ns || elems2[0].Width != 80*clock.Ns {
		t.Fatal("ActiveLow not equivalent to inverted path")
	}
	// Double negation cancels.
	elems3, err := Build("ln3", celllib.Transparent, st, cs, 0, true, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elems3[0].LeadAt != 0 || elems3[0].Width != 20*clock.Ns {
		t.Fatal("inverted ActiveLow should cancel")
	}
}

func TestEdgeTriggered(t *testing.T) {
	cs := cs2(t)
	elems, err := Build("ff", celllib.EdgeTriggered, transparentTiming(), cs, 0, false, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	e := elems[0]
	if e.IdealAssert != e.IdealClose || e.IdealAssert != 20*clock.Ns {
		t.Fatalf("FF ideal times %v/%v, want both 20ns", e.IdealAssert, e.IdealClose)
	}
	if e.HasDOF() {
		t.Fatal("FF has DOF")
	}
	if e.Ozd() != 0 || e.Odz != 0 {
		t.Fatal("FF data offsets not pinned")
	}
	// Input closure = trail − Dsetup; output assert = trail + Oat + Dcz.
	if e.InputClosure() != 20*clock.Ns-150 {
		t.Fatalf("FF closure = %v", e.InputClosure())
	}
	if e.OutputAssert() != 20*clock.Ns+50+320 {
		t.Fatalf("FF assert = %v", e.OutputAssert())
	}
	// All transfer operations are no-ops.
	if e.CompleteForward(1000) != 0 || e.CompleteBackward(1000) != 0 ||
		e.PartialForward(1000, 2) != 0 || e.PartialBackward(1000, 2) != 0 ||
		e.SnatchForward(-1000) != 0 || e.SnatchBackward(-1000) != 0 {
		t.Fatal("FF transfer ops moved time")
	}
}

func TestBuildRejections(t *testing.T) {
	cs := cs2(t)
	if _, err := Build("c", celllib.Comb, transparentTiming(), cs, 0, false, 0, 0); err == nil {
		t.Fatal("comb accepted")
	}
	if _, err := Build("l", celllib.Transparent, nil, cs, 0, false, 0, 0); err == nil {
		t.Fatal("nil timing accepted")
	}
	if _, err := Build("l", celllib.Transparent, transparentTiming(), cs, 0, false, 10, 20); err == nil {
		t.Fatal("ctrlMax < ctrlMin accepted")
	}
	if _, err := Build("l", celllib.Transparent, transparentTiming(), cs, 0, false, -5, -5); err == nil {
		t.Fatal("negative control delay accepted")
	}
}

func TestOffsetRangeAndEffectiveTimes(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 100, 60)
	e := elems[0]
	if e.OdzMin() != -(20*clock.Ns+280) || e.OdzMax() != -280 {
		t.Fatalf("Odz range [%v,%v]", e.OdzMin(), e.OdzMax())
	}
	// At OdzMax: closure = trail + min(−150, −280) = trail − 280.
	e.Odz = e.OdzMax()
	if e.InputClosure() != 20*clock.Ns-280 {
		t.Fatalf("closure at OdzMax = %v", e.InputClosure())
	}
	// Ozd at max = W: assertion = lead + max(W, Ozc) = lead + 20ns.
	if e.Ozd() != 20*clock.Ns {
		t.Fatalf("Ozd at max = %v", e.Ozd())
	}
	if e.OutputAssert() != 20*clock.Ns {
		t.Fatalf("assert at OdzMax = %v", e.OutputAssert())
	}
	// At OdzMin: Ozd = 0, assertion controlled by Ozc = 100+320.
	e.Odz = e.OdzMin()
	if e.Ozd() != 0 {
		t.Fatalf("Ozd at min = %v", e.Ozd())
	}
	if e.OutputAssert() != 0+100+320 {
		t.Fatalf("assert at OdzMin = %v", e.OutputAssert())
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 0, 0)
	e := elems[0]
	e.Odz = e.OdzMax() + 1
	if err := e.Validate(); err == nil {
		t.Fatal("Odz above max accepted")
	}
	e.Odz = e.OdzMin() - 1
	if err := e.Validate(); err == nil {
		t.Fatal("Odz below min accepted")
	}
}

func TestCompleteForwardTransfer(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 0, 0)
	e := elems[0]
	// Initially at OdzMax; full headroom down = W.
	if got := e.headroomDownAt(e.Odz); got != 20*clock.Ns {
		t.Fatalf("headroomDown = %v", got)
	}
	// Donate 5ns of upstream slack.
	if amt := e.CompleteForward(5 * clock.Ns); amt != 5*clock.Ns {
		t.Fatalf("transferred %v", amt)
	}
	if e.Odz != -280-5*clock.Ns {
		t.Fatalf("Odz after transfer = %v", e.Odz)
	}
	// Donating more than headroom transfers only the headroom.
	if amt := e.CompleteForward(clock.Inf); amt != 15*clock.Ns {
		t.Fatalf("clamped transfer = %v", amt)
	}
	if e.Odz != e.OdzMin() {
		t.Fatal("not at OdzMin after saturation")
	}
	// No headroom left: nothing transfers.
	if amt := e.CompleteForward(clock.Inf); amt != 0 {
		t.Fatalf("transfer with no headroom = %v", amt)
	}
	// Negative slack: nothing transfers.
	e.Odz = -300
	if amt := e.CompleteForward(-1); amt != 0 {
		t.Fatalf("transfer with negative slack = %v", amt)
	}
}

func TestCompleteBackwardTransfer(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 0, 0)
	e := elems[0]
	e.Odz = e.OdzMin()
	if amt := e.CompleteBackward(3 * clock.Ns); amt != 3*clock.Ns {
		t.Fatalf("backward transfer = %v", amt)
	}
	if e.Odz != e.OdzMin()+3*clock.Ns {
		t.Fatalf("Odz = %v", e.Odz)
	}
	if amt := e.CompleteBackward(clock.Inf); amt != e.OdzMax()-e.OdzMin()-3*clock.Ns {
		t.Fatalf("saturating backward = %v", amt)
	}
}

func TestPartialTransfers(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 0, 0)
	e := elems[0]
	if amt := e.PartialForward(10*clock.Ns, 2); amt != 5*clock.Ns {
		t.Fatalf("partial forward = %v", amt)
	}
	if amt := e.PartialBackward(8*clock.Ns, 4); amt != 2*clock.Ns {
		t.Fatalf("partial backward = %v", amt)
	}
	// div <= 1 falls back to 2.
	if amt := e.PartialForward(10*clock.Ns, 0); amt != 5*clock.Ns {
		t.Fatalf("partial forward div0 = %v", amt)
	}
}

func TestSnatching(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, false, 0, 0)
	e := elems[0]
	// Positive slack: snatch is a no-op.
	if e.SnatchForward(5) != 0 || e.SnatchBackward(5) != 0 {
		t.Fatal("snatched with positive slack")
	}
	// Downstream short by 4ns: snatch forward.
	if amt := e.SnatchForward(-4 * clock.Ns); amt != 4*clock.Ns {
		t.Fatalf("snatch forward = %v", amt)
	}
	if e.Odz != -280-4*clock.Ns {
		t.Fatalf("Odz = %v", e.Odz)
	}
	// Upstream short by 100ns (more than headroom up, which is now 4ns).
	if amt := e.SnatchBackward(-100 * clock.Ns); amt != 4*clock.Ns {
		t.Fatalf("snatch backward = %v", amt)
	}
	if e.Odz != e.OdzMax() {
		t.Fatal("snatch backward did not restore OdzMax")
	}
}

// Property: any sequence of transfer operations keeps the element valid and
// preserves the Figure-3 identity Ozd = W + Odz + Ddz.
func TestTransferInvariants(t *testing.T) {
	cs := cs2(t)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		elems, err := Build("l1", celllib.Transparent, transparentTiming(), cs, 0, r.Intn(2) == 1, clock.Time(r.Intn(1000)), 0)
		if err != nil {
			return false
		}
		e := elems[0]
		for i := 0; i < 50; i++ {
			v := clock.Time(r.Intn(100000) - 50000)
			switch r.Intn(6) {
			case 0:
				e.CompleteForward(v)
			case 1:
				e.CompleteBackward(v)
			case 2:
				e.PartialForward(v, int64(1+r.Intn(4)))
			case 3:
				e.PartialBackward(v, int64(1+r.Intn(4)))
			case 4:
				e.SnatchForward(v)
			case 5:
				e.SnatchBackward(v)
			}
			if e.Validate() != nil {
				return false
			}
			if e.Ozd() != e.Width+e.Odz+e.Ddz {
				return false
			}
			// The data-path closure and assertion move together: their
			// difference is the constant W + Ddz.
			if e.Ozd()-e.Odz != e.Width+e.Ddz {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a forward transfer of amount a moves both the input closure and
// output assertion a picoseconds earlier (when Odz stays below Odc, so the
// min() is governed by Odz).
func TestTransferMovesBothTerminals(t *testing.T) {
	cs := cs2(t)
	elems, _ := Build("l1", celllib.Transparent,
		&celllib.SyncTiming{Dsetup: 0, Ddz: 0, Dcz: 0}, cs, 0, false, 0, 0)
	e := elems[0]
	e.Odz = -2 * clock.Ns // below Odc = 0
	c0, a0 := e.InputClosure(), e.OutputAssert()
	amt := e.CompleteForward(1 * clock.Ns)
	if amt != 1*clock.Ns {
		t.Fatalf("amt = %v", amt)
	}
	if e.InputClosure() != c0-amt || e.OutputAssert() != a0-amt {
		t.Fatalf("terminals moved unequally: closure %v->%v assert %v->%v",
			c0, e.InputClosure(), a0, e.OutputAssert())
	}
}

func TestTristateModeledAsTransparent(t *testing.T) {
	cs := cs2(t)
	elems, err := Build("tb", celllib.Tristate, transparentTiming(), cs, 0, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := elems[0]
	if !e.HasDOF() {
		t.Fatal("tristate driver should have transparent-latch freedom")
	}
	if e.IdealAssert != e.LeadAt || e.IdealClose != e.TrailAt {
		t.Fatal("tristate ideal times wrong")
	}
}

func TestValidateErrorBranches(t *testing.T) {
	cs := cs2(t)
	mk := func() *Element {
		elems, err := Build("v", celllib.Transparent, transparentTiming(), cs, 0, false, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		return elems[0]
	}
	e := mk()
	e.Dsetup = -1
	if e.Validate() == nil {
		t.Fatal("negative Dsetup accepted")
	}
	e = mk()
	e.CtrlMax, e.CtrlMin = 5, 10
	if e.Validate() == nil {
		t.Fatal("ctrlMax < ctrlMin accepted")
	}
	e = mk()
	e.CtrlMin = -1
	if e.Validate() == nil {
		t.Fatal("negative ctrlMin accepted")
	}
	// Edge-triggered with nonzero Odz.
	ff, err := Build("f", celllib.EdgeTriggered, transparentTiming(), cs, 0, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ff[0].Odz = 5
	if ff[0].Validate() == nil {
		t.Fatal("FF with nonzero Odz accepted")
	}
	// Port elements validate trivially.
	ports, err := BuildPort("P", cs, 0, clock.Rise, -100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ports[0].Validate(); err != nil {
		t.Fatal(err)
	}
	if ports[0].InputOffset() != -100 || ports[0].OutputOffset() != -100 {
		t.Fatal("port offsets not pinned")
	}
}

func TestBuildPortErrors(t *testing.T) {
	cs := cs2(t)
	if _, err := BuildPort("P", cs, -1, clock.Rise, 0); err == nil {
		t.Fatal("bad signal index accepted")
	}
	if _, err := BuildPort("P", cs, 99, clock.Rise, 0); err == nil {
		t.Fatal("out-of-range signal accepted")
	}
	// Multi-pulse port replication.
	ports, err := BuildPort("P", cs, 1, clock.Fall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 2 || ports[0].IdealAssert == ports[1].IdealAssert {
		t.Fatalf("port replication wrong: %d", len(ports))
	}
}
