// Package syncelem implements the paper's generic synchronising-element
// model (§4, Figure 2) and the concrete edge-triggered / transparent-latch /
// tristate-driver models of §5 (Figure 3).
//
// Each element terminal carries an *offset* — a real number relative to an
// *ideal* time of the associated ideal system (a clock edge):
//
//	Odc = −Dsetup        input closure via closure control   (constant)
//	Odz                  input closure via the data path     (the DOF)
//	Ozc = Oat + Dcz      output assertion via assert control (control delay)
//	Ozd = W + Odz + Ddz  output assertion via the data path  (Figure 3)
//
// Effective input closure  = ideal closure  + min(Odc, Odz)
// Effective output assert  = ideal assertion + max(Ozc, Ozd)
//
// Transparent latches (and clocked tristate drivers, modelled identically,
// §5) expose a single degree of freedom: sliding Odz within
// [−(W+Ddz), −Ddz] trades time between the combinational path *into* the
// element and the path *out of* it. Edge-triggered latches have Odz and Ozd
// pinned to zero — no freedom. Slack transfer and time snatching (§6) are
// exactly shifts of this DOF.
//
// A physical latch clocked at n times the overall frequency is represented
// by n Elements "connected in parallel" (§4), one per control pulse in the
// overall period; each replica has independent offsets.
package syncelem

import (
	"fmt"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
)

// Element is one generic synchronising element: one control pulse of one
// physical latch instance per overall clock period.
type Element struct {
	// Inst is the owning netlist instance name.
	Inst string
	// Occur is the pulse occurrence index within the overall period
	// (0 for elements clocked at the overall frequency).
	Occur int
	// Kind is Transparent, EdgeTriggered or Tristate.
	Kind celllib.Kind

	// Sig is the controlling clock signal's index within the clock.Set.
	Sig int
	// Inverted records whether the effective control pulse is the
	// complement of the clock waveform (control-path inversion parity
	// XOR the cell's ActiveLow polarity); under the §3 monotonicity
	// assumption this single bit captures the whole control function.
	Inverted bool

	// LeadEdge and TrailEdge identify the clock edges that bound the
	// effective control pulse, as indices into clock.Set.Edges().
	LeadEdge, TrailEdge int
	// LeadAt and TrailAt are those edges' absolute times in [0, T).
	LeadAt, TrailAt clock.Time
	// Width is the control pulse width W (cyclic distance lead→trail).
	Width clock.Time

	// IdealAssert is the ideal output assertion time: the leading edge for
	// transparent elements, the trailing edge for edge-triggered ones.
	IdealAssert clock.Time
	// IdealClose is the ideal input closure time: the trailing edge.
	IdealClose clock.Time
	// AssertEdge and CloseEdge are the corresponding edge indices.
	AssertEdge, CloseEdge int

	// Element timing parameters (§5).
	Dsetup, Ddz, Dcz clock.Time
	// CtrlMax/CtrlMin are the control path delays from the clock generator
	// to the control input (Oat = CtrlMax; the paper's Oac lower bound of
	// zero corresponds to CtrlMin ≥ 0).
	CtrlMax, CtrlMin clock.Time

	// Odz is the data-path input-closure offset — the mutable degree of
	// freedom. Edge-triggered elements keep it at zero.
	Odz clock.Time

	// Port marks a virtual element standing in for a primary input or
	// output of the design: assertion (inputs) or closure (outputs) is
	// pinned at the referenced clock edge plus PortOffset, with no degree
	// of freedom. This realises Hitchcock-style assorted assertion and
	// closure times at the chip boundary [6].
	Port bool
	// PortOffset shifts the port's pinned time relative to its ideal edge.
	PortOffset clock.Time
}

// BuildPort expands one primary port into its virtual generic elements, one
// per occurrence of the referenced clock edge within the overall period. A
// primary input behaves as an immovable synchronising-element output
// asserting at (edge + offset); a primary output behaves as an immovable
// data input closing at (edge + offset).
func BuildPort(name string, cs *clock.Set, sig int, kind clock.EdgeKind, offset clock.Time) ([]*Element, error) {
	if sig < 0 || sig >= cs.Len() {
		return nil, fmt.Errorf("syncelem: port %s: bad clock index %d", name, sig)
	}
	n := cs.PulseCount(sig)
	elems := make([]*Element, 0, n)
	for k := 0; k < n; k++ {
		idx := cs.FindEdge(sig, kind, k)
		if idx < 0 {
			return nil, fmt.Errorf("syncelem: port %s: edge not found", name)
		}
		at := cs.Edges()[idx].At
		e := &Element{
			Inst: name, Occur: k, Kind: celllib.EdgeTriggered,
			Sig:         sig,
			IdealAssert: at, AssertEdge: idx,
			IdealClose: at, CloseEdge: idx,
			LeadEdge: idx, TrailEdge: idx, LeadAt: at, TrailAt: at,
			Port: true, PortOffset: offset,
		}
		elems = append(elems, e)
	}
	return elems, nil
}

// Build expands one physical synchronising instance into its generic
// elements: one per control pulse within the overall period of cs.
// inverted is the control path's inversion parity (true if an odd number of
// logic inversions separate the clock generator from the control pin);
// ctrlMax/ctrlMin are the control path propagation delays.
func Build(inst string, kind celllib.Kind, st *celllib.SyncTiming, cs *clock.Set,
	sig int, inverted bool, ctrlMax, ctrlMin clock.Time) ([]*Element, error) {
	if kind == celllib.Comb {
		return nil, fmt.Errorf("syncelem: %s: combinational cells are not synchronising elements", inst)
	}
	if st == nil {
		return nil, fmt.Errorf("syncelem: %s: missing sync timing", inst)
	}
	if ctrlMax < ctrlMin || ctrlMin < 0 {
		return nil, fmt.Errorf("syncelem: %s: bad control delays max=%v min=%v", inst, ctrlMax, ctrlMin)
	}
	eff := inverted != st.ActiveLow // effective complementation of the waveform
	s := cs.Signal(sig)
	leadKind, trailKind := clock.Rise, clock.Fall
	if eff {
		leadKind, trailKind = clock.Fall, clock.Rise
	}
	n := cs.PulseCount(sig)
	elems := make([]*Element, 0, n)
	for k := 0; k < n; k++ {
		leadPhase := s.RiseAt
		trailPhase := s.FallAt
		if eff {
			leadPhase, trailPhase = s.FallAt, s.RiseAt
		}
		leadAt := leadPhase + clock.Time(k)*s.Period
		// The trailing edge is the first trailKind edge cyclically after
		// the leading edge; it may wrap into the next period (occurrence
		// (k+1) mod n).
		trailOcc := k
		trailAt := trailPhase + clock.Time(k)*s.Period
		if trailPhase <= leadPhase {
			trailOcc = (k + 1) % n
			trailAt = trailPhase + clock.Time(trailOcc)*s.Period
		}
		leadIdx := cs.FindEdge(sig, leadKind, k)
		trailIdx := cs.FindEdge(sig, trailKind, trailOcc)
		if leadIdx < 0 || trailIdx < 0 {
			return nil, fmt.Errorf("syncelem: %s: control edges not found in clock set", inst)
		}
		w := cs.CyclicForward(leadAt, trailAt)
		if w == 0 {
			w = cs.Overall()
		}
		e := &Element{
			Inst: inst, Occur: k, Kind: kind,
			Sig: sig, Inverted: inverted,
			LeadEdge: leadIdx, TrailEdge: trailIdx,
			LeadAt: leadAt, TrailAt: trailAt, Width: w,
			Dsetup: st.Dsetup, Ddz: st.Ddz, Dcz: st.Dcz,
			CtrlMax: ctrlMax, CtrlMin: ctrlMin,
		}
		switch kind {
		case celllib.EdgeTriggered:
			// Trailing edge controls both closure and assertion (§5).
			e.IdealAssert, e.AssertEdge = trailAt, trailIdx
			e.IdealClose, e.CloseEdge = trailAt, trailIdx
			e.Odz = 0
		default: // Transparent, Tristate
			e.IdealAssert, e.AssertEdge = leadAt, leadIdx
			e.IdealClose, e.CloseEdge = trailAt, trailIdx
			// Start at the latest legal closure: Odz = −Ddz, i.e. the
			// element behaves as if data may arrive right up to
			// (trailing edge − Ddz); any initial choice satisfying the
			// constraints is permitted (Algorithm 1, Initialise).
			e.Odz = -st.Ddz
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return elems, nil
}

// Name renders "inst" or "inst[k]" for replicated elements.
func (e *Element) Name() string {
	if e.Occur == 0 {
		return e.Inst
	}
	return fmt.Sprintf("%s[%d]", e.Inst, e.Occur)
}

// HasDOF reports whether the element's offsets can move at all.
func (e *Element) HasDOF() bool { return e.Kind != celllib.EdgeTriggered && !e.Port }

// InitialOdz returns the offset Algorithm 1 initialises the element with:
// the latest legal closure (OdzMax) for elements with a degree of freedom,
// zero otherwise. cluster.Compile snapshots these into the immutable
// CompiledDesign so every sta.AnalysisState starts from the same vector
// without walking element pointers.
func (e *Element) InitialOdz() clock.Time {
	if e.HasDOF() {
		return e.OdzMax()
	}
	return 0
}

// OdzMin returns the lower bound of the Odz range: Ozd = W + Odz + Ddz ≥ 0.
func (e *Element) OdzMin() clock.Time {
	if !e.HasDOF() {
		return 0
	}
	return -(e.Width + e.Ddz)
}

// OdzMax returns the upper bound of the Odz range: Odz ≤ −Ddz (§5).
func (e *Element) OdzMax() clock.Time {
	if !e.HasDOF() {
		return 0
	}
	return -e.Ddz
}

// Oat returns the assertion-control offset: the latest control arrival.
func (e *Element) Oat() clock.Time { return e.CtrlMax }

// Ozc returns the control-path output-assertion offset Oat + Dcz.
func (e *Element) Ozc() clock.Time { return e.CtrlMax + e.Dcz }

// Ozd returns the data-path output-assertion offset. For transparent
// elements it tracks Odz through the Figure-3 relationship
// Ozd = W + Odz + Ddz; edge-triggered elements pin it at zero.
func (e *Element) Ozd() clock.Time { return e.OzdAt(e.Odz) }

// OzdAt is Ozd evaluated at an externally held offset instead of e.Odz.
// The *At accessors let an analysis keep its offset vector in a mutable
// sta.AnalysisState while the elements themselves stay frozen inside a
// shared CompiledDesign.
func (e *Element) OzdAt(odz clock.Time) clock.Time {
	if !e.HasDOF() {
		return 0
	}
	return e.Width + odz + e.Ddz
}

// Odc returns the closure-control input offset −Dsetup (constant, §4).
func (e *Element) Odc() clock.Time { return -e.Dsetup }

// InputOffset returns the effective input-closure offset min(Odc, Odz),
// or the pinned offset for port elements.
func (e *Element) InputOffset() clock.Time { return e.InputOffsetAt(e.Odz) }

// InputOffsetAt is InputOffset at an externally held offset.
func (e *Element) InputOffsetAt(odz clock.Time) clock.Time {
	if e.Port {
		return e.PortOffset
	}
	if odz < e.Odc() {
		return odz
	}
	return e.Odc()
}

// OutputOffset returns the effective output-assertion offset max(Ozc, Ozd),
// or the pinned offset for port elements.
func (e *Element) OutputOffset() clock.Time { return e.OutputOffsetAt(e.Odz) }

// OutputOffsetAt is OutputOffset at an externally held offset.
func (e *Element) OutputOffsetAt(odz clock.Time) clock.Time {
	if e.Port {
		return e.PortOffset
	}
	if ozd := e.OzdAt(odz); ozd > e.Ozc() {
		return ozd
	}
	return e.Ozc()
}

// InputClosure returns the absolute effective input closure time.
func (e *Element) InputClosure() clock.Time { return e.IdealClose + e.InputOffset() }

// InputClosureAt is InputClosure at an externally held offset.
func (e *Element) InputClosureAt(odz clock.Time) clock.Time {
	return e.IdealClose + e.InputOffsetAt(odz)
}

// OutputAssert returns the absolute effective output assertion time.
func (e *Element) OutputAssert() clock.Time { return e.IdealAssert + e.OutputOffset() }

// OutputAssertAt is OutputAssert at an externally held offset.
func (e *Element) OutputAssertAt(odz clock.Time) clock.Time {
	return e.IdealAssert + e.OutputOffsetAt(odz)
}

// Validate checks the synchronising-element constraints of §5.
func (e *Element) Validate() error { return e.ValidateAt(e.Odz) }

// ValidateAt checks the element's static parameters together with an offset
// value held externally (analyses keep offsets in an AnalysisState rather
// than on the element).
func (e *Element) ValidateAt(odz clock.Time) error {
	if e.Dsetup < 0 || e.Ddz < 0 || e.Dcz < 0 {
		return fmt.Errorf("syncelem %s: negative timing parameters", e.Name())
	}
	if e.CtrlMax < 0 || e.CtrlMin < 0 || e.CtrlMax < e.CtrlMin {
		return fmt.Errorf("syncelem %s: inconsistent control delays", e.Name())
	}
	if e.Kind == celllib.EdgeTriggered {
		if odz != 0 {
			return fmt.Errorf("syncelem %s: edge-triggered element with nonzero Odz", e.Name())
		}
		return nil
	}
	if odz < e.OdzMin() || odz > e.OdzMax() {
		return fmt.Errorf("syncelem %s: Odz=%v outside [%v,%v]", e.Name(), odz, e.OdzMin(), e.OdzMax())
	}
	if e.OzdAt(odz) < 0 {
		return fmt.Errorf("syncelem %s: Ozd=%v negative", e.Name(), e.OzdAt(odz))
	}
	return nil
}

// headroomDownAt is the maximum legal decrease m of the offsets from odz.
func (e *Element) headroomDownAt(odz clock.Time) clock.Time { return odz - e.OdzMin() }

// headroomUpAt is the maximum legal increase m of the offsets from odz.
func (e *Element) headroomUpAt(odz clock.Time) clock.Time { return e.OdzMax() - odz }

// shiftAt moves the DOF by delta (positive = later closure/assertion),
// clamping defensively at the legal range, and returns the new offset.
func (e *Element) shiftAt(odz, delta clock.Time) clock.Time {
	if !e.HasDOF() {
		return odz
	}
	odz += delta
	if odz < e.OdzMin() {
		odz = e.OdzMin()
	}
	if odz > e.OdzMax() {
		odz = e.OdzMax()
	}
	return odz
}

// The transfer operations of §6 come in two forms: the *At variants are
// pure functions over an externally held offset — (odz, slack) → (new
// offset, amount moved) — used by every analysis against its
// sta.AnalysisState; the receiver-mutating forms below them wrap the pure
// ones over e.Odz for standalone element use (tests, demos).

// CompleteForwardAt performs complete forward slack transfer (§6): the
// upstream paths (ending at the element's data input, node slack nIn)
// donate min(nIn, m) to the downstream paths by decreasing both offsets.
// It returns the new offset and the amount transferred (zero if none).
func (e *Element) CompleteForwardAt(odz, nIn clock.Time) (clock.Time, clock.Time) {
	m := e.headroomDownAt(odz)
	amt := minT(nIn, m)
	if amt <= 0 {
		return odz, 0
	}
	return e.shiftAt(odz, -amt), amt
}

// CompleteBackwardAt performs complete backward slack transfer: downstream
// paths (starting at the output, node slack nOut) donate min(nOut, m) by
// increasing both offsets.
func (e *Element) CompleteBackwardAt(odz, nOut clock.Time) (clock.Time, clock.Time) {
	m := e.headroomUpAt(odz)
	amt := minT(nOut, m)
	if amt <= 0 {
		return odz, 0
	}
	return e.shiftAt(odz, amt), amt
}

// PartialForwardAt transfers min(nIn/div, m) forward, div > 1 (§6's partial
// transfer with real divisor n; we use integer division).
func (e *Element) PartialForwardAt(odz, nIn clock.Time, div int64) (clock.Time, clock.Time) {
	if div <= 1 {
		div = 2
	}
	m := e.headroomDownAt(odz)
	amt := minT(nIn/clock.Time(div), m)
	if amt <= 0 {
		return odz, 0
	}
	return e.shiftAt(odz, -amt), amt
}

// PartialBackwardAt transfers min(nOut/div, m) backward.
func (e *Element) PartialBackwardAt(odz, nOut clock.Time, div int64) (clock.Time, clock.Time) {
	if div <= 1 {
		div = 2
	}
	m := e.headroomUpAt(odz)
	amt := minT(nOut/clock.Time(div), m)
	if amt <= 0 {
		return odz, 0
	}
	return e.shiftAt(odz, amt), amt
}

// SnatchForwardAt takes time from the upstream path regardless of surplus
// (§6): when the downstream node slack nOut is negative, decrease the
// offsets by min(−nOut, m).
func (e *Element) SnatchForwardAt(odz, nOut clock.Time) (clock.Time, clock.Time) {
	if nOut >= 0 {
		return odz, 0
	}
	m := e.headroomDownAt(odz)
	amt := minT(-nOut, m)
	if amt <= 0 {
		return odz, 0
	}
	return e.shiftAt(odz, -amt), amt
}

// SnatchBackwardAt takes time from the downstream path: when the upstream
// node slack nIn is negative, increase the offsets by min(−nIn, m). This is
// how actual (late) ready times propagate forward through transparent
// latches in Algorithm 2's iteration 1.
func (e *Element) SnatchBackwardAt(odz, nIn clock.Time) (clock.Time, clock.Time) {
	if nIn >= 0 {
		return odz, 0
	}
	m := e.headroomUpAt(odz)
	amt := minT(-nIn, m)
	if amt <= 0 {
		return odz, 0
	}
	return e.shiftAt(odz, amt), amt
}

// CompleteForward is CompleteForwardAt over the element's own offset.
func (e *Element) CompleteForward(nIn clock.Time) clock.Time {
	odz, amt := e.CompleteForwardAt(e.Odz, nIn)
	e.Odz = odz
	return amt
}

// CompleteBackward is CompleteBackwardAt over the element's own offset.
func (e *Element) CompleteBackward(nOut clock.Time) clock.Time {
	odz, amt := e.CompleteBackwardAt(e.Odz, nOut)
	e.Odz = odz
	return amt
}

// PartialForward is PartialForwardAt over the element's own offset.
func (e *Element) PartialForward(nIn clock.Time, div int64) clock.Time {
	odz, amt := e.PartialForwardAt(e.Odz, nIn, div)
	e.Odz = odz
	return amt
}

// PartialBackward is PartialBackwardAt over the element's own offset.
func (e *Element) PartialBackward(nOut clock.Time, div int64) clock.Time {
	odz, amt := e.PartialBackwardAt(e.Odz, nOut, div)
	e.Odz = odz
	return amt
}

// SnatchForward is SnatchForwardAt over the element's own offset.
func (e *Element) SnatchForward(nOut clock.Time) clock.Time {
	odz, amt := e.SnatchForwardAt(e.Odz, nOut)
	e.Odz = odz
	return amt
}

// SnatchBackward is SnatchBackwardAt over the element's own offset.
func (e *Element) SnatchBackward(nIn clock.Time) clock.Time {
	odz, amt := e.SnatchBackwardAt(e.Odz, nIn)
	e.Odz = odz
	return amt
}

func minT(a, b clock.Time) clock.Time {
	if a < b {
		return a
	}
	return b
}
