// Package syncelem implements the paper's generic synchronising-element
// model (§4, Figure 2) and the concrete edge-triggered / transparent-latch /
// tristate-driver models of §5 (Figure 3).
//
// Each element terminal carries an *offset* — a real number relative to an
// *ideal* time of the associated ideal system (a clock edge):
//
//	Odc = −Dsetup        input closure via closure control   (constant)
//	Odz                  input closure via the data path     (the DOF)
//	Ozc = Oat + Dcz      output assertion via assert control (control delay)
//	Ozd = W + Odz + Ddz  output assertion via the data path  (Figure 3)
//
// Effective input closure  = ideal closure  + min(Odc, Odz)
// Effective output assert  = ideal assertion + max(Ozc, Ozd)
//
// Transparent latches (and clocked tristate drivers, modelled identically,
// §5) expose a single degree of freedom: sliding Odz within
// [−(W+Ddz), −Ddz] trades time between the combinational path *into* the
// element and the path *out of* it. Edge-triggered latches have Odz and Ozd
// pinned to zero — no freedom. Slack transfer and time snatching (§6) are
// exactly shifts of this DOF.
//
// A physical latch clocked at n times the overall frequency is represented
// by n Elements "connected in parallel" (§4), one per control pulse in the
// overall period; each replica has independent offsets.
package syncelem

import (
	"fmt"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
)

// Element is one generic synchronising element: one control pulse of one
// physical latch instance per overall clock period.
type Element struct {
	// Inst is the owning netlist instance name.
	Inst string
	// Occur is the pulse occurrence index within the overall period
	// (0 for elements clocked at the overall frequency).
	Occur int
	// Kind is Transparent, EdgeTriggered or Tristate.
	Kind celllib.Kind

	// Sig is the controlling clock signal's index within the clock.Set.
	Sig int
	// Inverted records whether the effective control pulse is the
	// complement of the clock waveform (control-path inversion parity
	// XOR the cell's ActiveLow polarity); under the §3 monotonicity
	// assumption this single bit captures the whole control function.
	Inverted bool

	// LeadEdge and TrailEdge identify the clock edges that bound the
	// effective control pulse, as indices into clock.Set.Edges().
	LeadEdge, TrailEdge int
	// LeadAt and TrailAt are those edges' absolute times in [0, T).
	LeadAt, TrailAt clock.Time
	// Width is the control pulse width W (cyclic distance lead→trail).
	Width clock.Time

	// IdealAssert is the ideal output assertion time: the leading edge for
	// transparent elements, the trailing edge for edge-triggered ones.
	IdealAssert clock.Time
	// IdealClose is the ideal input closure time: the trailing edge.
	IdealClose clock.Time
	// AssertEdge and CloseEdge are the corresponding edge indices.
	AssertEdge, CloseEdge int

	// Element timing parameters (§5).
	Dsetup, Ddz, Dcz clock.Time
	// CtrlMax/CtrlMin are the control path delays from the clock generator
	// to the control input (Oat = CtrlMax; the paper's Oac lower bound of
	// zero corresponds to CtrlMin ≥ 0).
	CtrlMax, CtrlMin clock.Time

	// Odz is the data-path input-closure offset — the mutable degree of
	// freedom. Edge-triggered elements keep it at zero.
	Odz clock.Time

	// Port marks a virtual element standing in for a primary input or
	// output of the design: assertion (inputs) or closure (outputs) is
	// pinned at the referenced clock edge plus PortOffset, with no degree
	// of freedom. This realises Hitchcock-style assorted assertion and
	// closure times at the chip boundary [6].
	Port bool
	// PortOffset shifts the port's pinned time relative to its ideal edge.
	PortOffset clock.Time
}

// BuildPort expands one primary port into its virtual generic elements, one
// per occurrence of the referenced clock edge within the overall period. A
// primary input behaves as an immovable synchronising-element output
// asserting at (edge + offset); a primary output behaves as an immovable
// data input closing at (edge + offset).
func BuildPort(name string, cs *clock.Set, sig int, kind clock.EdgeKind, offset clock.Time) ([]*Element, error) {
	if sig < 0 || sig >= cs.Len() {
		return nil, fmt.Errorf("syncelem: port %s: bad clock index %d", name, sig)
	}
	n := cs.PulseCount(sig)
	elems := make([]*Element, 0, n)
	for k := 0; k < n; k++ {
		idx := cs.FindEdge(sig, kind, k)
		if idx < 0 {
			return nil, fmt.Errorf("syncelem: port %s: edge not found", name)
		}
		at := cs.Edges()[idx].At
		e := &Element{
			Inst: name, Occur: k, Kind: celllib.EdgeTriggered,
			Sig:         sig,
			IdealAssert: at, AssertEdge: idx,
			IdealClose: at, CloseEdge: idx,
			LeadEdge: idx, TrailEdge: idx, LeadAt: at, TrailAt: at,
			Port: true, PortOffset: offset,
		}
		elems = append(elems, e)
	}
	return elems, nil
}

// Build expands one physical synchronising instance into its generic
// elements: one per control pulse within the overall period of cs.
// inverted is the control path's inversion parity (true if an odd number of
// logic inversions separate the clock generator from the control pin);
// ctrlMax/ctrlMin are the control path propagation delays.
func Build(inst string, kind celllib.Kind, st *celllib.SyncTiming, cs *clock.Set,
	sig int, inverted bool, ctrlMax, ctrlMin clock.Time) ([]*Element, error) {
	if kind == celllib.Comb {
		return nil, fmt.Errorf("syncelem: %s: combinational cells are not synchronising elements", inst)
	}
	if st == nil {
		return nil, fmt.Errorf("syncelem: %s: missing sync timing", inst)
	}
	if ctrlMax < ctrlMin || ctrlMin < 0 {
		return nil, fmt.Errorf("syncelem: %s: bad control delays max=%v min=%v", inst, ctrlMax, ctrlMin)
	}
	eff := inverted != st.ActiveLow // effective complementation of the waveform
	s := cs.Signal(sig)
	leadKind, trailKind := clock.Rise, clock.Fall
	if eff {
		leadKind, trailKind = clock.Fall, clock.Rise
	}
	n := cs.PulseCount(sig)
	elems := make([]*Element, 0, n)
	for k := 0; k < n; k++ {
		leadPhase := s.RiseAt
		trailPhase := s.FallAt
		if eff {
			leadPhase, trailPhase = s.FallAt, s.RiseAt
		}
		leadAt := leadPhase + clock.Time(k)*s.Period
		// The trailing edge is the first trailKind edge cyclically after
		// the leading edge; it may wrap into the next period (occurrence
		// (k+1) mod n).
		trailOcc := k
		trailAt := trailPhase + clock.Time(k)*s.Period
		if trailPhase <= leadPhase {
			trailOcc = (k + 1) % n
			trailAt = trailPhase + clock.Time(trailOcc)*s.Period
		}
		leadIdx := cs.FindEdge(sig, leadKind, k)
		trailIdx := cs.FindEdge(sig, trailKind, trailOcc)
		if leadIdx < 0 || trailIdx < 0 {
			return nil, fmt.Errorf("syncelem: %s: control edges not found in clock set", inst)
		}
		w := cs.CyclicForward(leadAt, trailAt)
		if w == 0 {
			w = cs.Overall()
		}
		e := &Element{
			Inst: inst, Occur: k, Kind: kind,
			Sig: sig, Inverted: inverted,
			LeadEdge: leadIdx, TrailEdge: trailIdx,
			LeadAt: leadAt, TrailAt: trailAt, Width: w,
			Dsetup: st.Dsetup, Ddz: st.Ddz, Dcz: st.Dcz,
			CtrlMax: ctrlMax, CtrlMin: ctrlMin,
		}
		switch kind {
		case celllib.EdgeTriggered:
			// Trailing edge controls both closure and assertion (§5).
			e.IdealAssert, e.AssertEdge = trailAt, trailIdx
			e.IdealClose, e.CloseEdge = trailAt, trailIdx
			e.Odz = 0
		default: // Transparent, Tristate
			e.IdealAssert, e.AssertEdge = leadAt, leadIdx
			e.IdealClose, e.CloseEdge = trailAt, trailIdx
			// Start at the latest legal closure: Odz = −Ddz, i.e. the
			// element behaves as if data may arrive right up to
			// (trailing edge − Ddz); any initial choice satisfying the
			// constraints is permitted (Algorithm 1, Initialise).
			e.Odz = -st.Ddz
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return elems, nil
}

// Name renders "inst" or "inst[k]" for replicated elements.
func (e *Element) Name() string {
	if e.Occur == 0 {
		return e.Inst
	}
	return fmt.Sprintf("%s[%d]", e.Inst, e.Occur)
}

// HasDOF reports whether the element's offsets can move at all.
func (e *Element) HasDOF() bool { return e.Kind != celllib.EdgeTriggered && !e.Port }

// OdzMin returns the lower bound of the Odz range: Ozd = W + Odz + Ddz ≥ 0.
func (e *Element) OdzMin() clock.Time {
	if !e.HasDOF() {
		return 0
	}
	return -(e.Width + e.Ddz)
}

// OdzMax returns the upper bound of the Odz range: Odz ≤ −Ddz (§5).
func (e *Element) OdzMax() clock.Time {
	if !e.HasDOF() {
		return 0
	}
	return -e.Ddz
}

// Oat returns the assertion-control offset: the latest control arrival.
func (e *Element) Oat() clock.Time { return e.CtrlMax }

// Ozc returns the control-path output-assertion offset Oat + Dcz.
func (e *Element) Ozc() clock.Time { return e.CtrlMax + e.Dcz }

// Ozd returns the data-path output-assertion offset. For transparent
// elements it tracks Odz through the Figure-3 relationship
// Ozd = W + Odz + Ddz; edge-triggered elements pin it at zero.
func (e *Element) Ozd() clock.Time {
	if !e.HasDOF() {
		return 0
	}
	return e.Width + e.Odz + e.Ddz
}

// Odc returns the closure-control input offset −Dsetup (constant, §4).
func (e *Element) Odc() clock.Time { return -e.Dsetup }

// InputOffset returns the effective input-closure offset min(Odc, Odz),
// or the pinned offset for port elements.
func (e *Element) InputOffset() clock.Time {
	if e.Port {
		return e.PortOffset
	}
	if e.Odz < e.Odc() {
		return e.Odz
	}
	return e.Odc()
}

// OutputOffset returns the effective output-assertion offset max(Ozc, Ozd),
// or the pinned offset for port elements.
func (e *Element) OutputOffset() clock.Time {
	if e.Port {
		return e.PortOffset
	}
	if e.Ozd() > e.Ozc() {
		return e.Ozd()
	}
	return e.Ozc()
}

// InputClosure returns the absolute effective input closure time.
func (e *Element) InputClosure() clock.Time { return e.IdealClose + e.InputOffset() }

// OutputAssert returns the absolute effective output assertion time.
func (e *Element) OutputAssert() clock.Time { return e.IdealAssert + e.OutputOffset() }

// Validate checks the synchronising-element constraints of §5.
func (e *Element) Validate() error {
	if e.Dsetup < 0 || e.Ddz < 0 || e.Dcz < 0 {
		return fmt.Errorf("syncelem %s: negative timing parameters", e.Name())
	}
	if e.CtrlMax < 0 || e.CtrlMin < 0 || e.CtrlMax < e.CtrlMin {
		return fmt.Errorf("syncelem %s: inconsistent control delays", e.Name())
	}
	if e.Kind == celllib.EdgeTriggered {
		if e.Odz != 0 {
			return fmt.Errorf("syncelem %s: edge-triggered element with nonzero Odz", e.Name())
		}
		return nil
	}
	if e.Odz < e.OdzMin() || e.Odz > e.OdzMax() {
		return fmt.Errorf("syncelem %s: Odz=%v outside [%v,%v]", e.Name(), e.Odz, e.OdzMin(), e.OdzMax())
	}
	if e.Ozd() < 0 {
		return fmt.Errorf("syncelem %s: Ozd=%v negative", e.Name(), e.Ozd())
	}
	return nil
}

// headroomDown is the maximum legal decrease m of the offsets.
func (e *Element) headroomDown() clock.Time { return e.Odz - e.OdzMin() }

// headroomUp is the maximum legal increase m of the offsets.
func (e *Element) headroomUp() clock.Time { return e.OdzMax() - e.Odz }

// shift moves the DOF by delta (positive = later closure/assertion),
// clamping defensively at the legal range.
func (e *Element) shift(delta clock.Time) {
	if !e.HasDOF() {
		return
	}
	e.Odz += delta
	if e.Odz < e.OdzMin() {
		e.Odz = e.OdzMin()
	}
	if e.Odz > e.OdzMax() {
		e.Odz = e.OdzMax()
	}
}

// CompleteForward performs complete forward slack transfer (§6): the
// upstream paths (ending at the element's data input, node slack nIn)
// donate min(nIn, m) to the downstream paths by decreasing both offsets.
// It returns the amount transferred (zero if none).
func (e *Element) CompleteForward(nIn clock.Time) clock.Time {
	m := e.headroomDown()
	amt := minT(nIn, m)
	if amt <= 0 {
		return 0
	}
	e.shift(-amt)
	return amt
}

// CompleteBackward performs complete backward slack transfer: downstream
// paths (starting at the output, node slack nOut) donate min(nOut, m) by
// increasing both offsets.
func (e *Element) CompleteBackward(nOut clock.Time) clock.Time {
	m := e.headroomUp()
	amt := minT(nOut, m)
	if amt <= 0 {
		return 0
	}
	e.shift(amt)
	return amt
}

// PartialForward transfers min(nIn/div, m) forward, div > 1 (§6's partial
// transfer with real divisor n; we use integer division).
func (e *Element) PartialForward(nIn clock.Time, div int64) clock.Time {
	if div <= 1 {
		div = 2
	}
	m := e.headroomDown()
	amt := minT(nIn/clock.Time(div), m)
	if amt <= 0 {
		return 0
	}
	e.shift(-amt)
	return amt
}

// PartialBackward transfers min(nOut/div, m) backward.
func (e *Element) PartialBackward(nOut clock.Time, div int64) clock.Time {
	if div <= 1 {
		div = 2
	}
	m := e.headroomUp()
	amt := minT(nOut/clock.Time(div), m)
	if amt <= 0 {
		return 0
	}
	e.shift(amt)
	return amt
}

// SnatchForward takes time from the upstream path regardless of surplus
// (§6): when the downstream node slack nOut is negative, decrease the
// offsets by min(−nOut, m). Returns the amount snatched.
func (e *Element) SnatchForward(nOut clock.Time) clock.Time {
	if nOut >= 0 {
		return 0
	}
	m := e.headroomDown()
	amt := minT(-nOut, m)
	if amt <= 0 {
		return 0
	}
	e.shift(-amt)
	return amt
}

// SnatchBackward takes time from the downstream path: when the upstream
// node slack nIn is negative, increase the offsets by min(−nIn, m). This is
// how actual (late) ready times propagate forward through transparent
// latches in Algorithm 2's iteration 1.
func (e *Element) SnatchBackward(nIn clock.Time) clock.Time {
	if nIn >= 0 {
		return 0
	}
	m := e.headroomUp()
	amt := minT(-nIn, m)
	if amt <= 0 {
		return 0
	}
	e.shift(amt)
	return amt
}

func minT(a, b clock.Time) clock.Time {
	if a < b {
		return a
	}
	return b
}
