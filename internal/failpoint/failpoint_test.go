package failpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	DisarmAll()
	if Active() {
		t.Fatal("points armed at test start")
	}
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("disarmed hit returned %v", err)
	}
}

func TestErrorInjection(t *testing.T) {
	DisarmAll()
	t.Cleanup(DisarmAll)
	if err := Arm("io.read", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err := Hit("io.read")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Name != "io.read" || ie.Msg != "disk gone" {
		t.Fatalf("injected error = %+v", ie)
	}
	// Other points stay quiet.
	if err := Hit("io.write"); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
}

func TestCountedTriggerDisarmsItself(t *testing.T) {
	DisarmAll()
	t.Cleanup(DisarmAll)
	if err := Arm("once", "2*error"); err != nil {
		t.Fatal(err)
	}
	if Hit("once") == nil || Hit("once") == nil {
		t.Fatal("counted point did not fire twice")
	}
	if err := Hit("once"); err != nil {
		t.Fatalf("exhausted point still fires: %v", err)
	}
	if Active() {
		t.Fatal("exhausted point left the armed count high")
	}
}

func TestPanicInjection(t *testing.T) {
	DisarmAll()
	t.Cleanup(DisarmAll)
	if err := Arm("handler", "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	Hit("handler")
}

func TestSleepInjection(t *testing.T) {
	DisarmAll()
	t.Cleanup(DisarmAll)
	if err := Arm("slow", "sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("sleep returned %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("sleep injection returned after %v", d)
	}
}

func TestArmFromEnvAndList(t *testing.T) {
	DisarmAll()
	t.Cleanup(DisarmAll)
	if err := ArmFromEnv("a=error; b = sleep(1ms) ;; c=1*panic(x)"); err != nil {
		t.Fatal(err)
	}
	got := Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("names = %v", got)
	}
	if spec := List()["b"]; !strings.Contains(spec, "sleep") {
		t.Fatalf("list lost the spec: %q", spec)
	}
	if err := ArmFromEnv("broken"); err == nil {
		t.Fatal("bad env entry accepted")
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	DisarmAll()
	t.Cleanup(DisarmAll)
	for _, spec := range []string{"frob", "sleep", "sleep(nope)", "0*error", "-1*panic", "error(unclosed"} {
		if err := Arm("p", spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if err := Arm("", "error"); err == nil {
		t.Error("empty name accepted")
	}
	// "off" disarms.
	if err := Arm("p", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Arm("p", "off"); err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("off did not disarm")
	}
}
