// Package failpoint provides name-keyed fault-injection points for the
// chaos tests: a call to Hit at an injection site does nothing (one atomic
// load) until the point is armed with an action, at which moment it
// returns an injected error, panics, or sleeps — letting tests provoke the
// failure modes the fault-tolerance layer must contain (I/O errors,
// handler panics, analyses that outlive their deadline) deterministically.
//
// Points are armed programmatically (Arm), from the environment
// (HB_FAILPOINTS="name=action;name2=action2", read by hummingbirdd at
// startup), or over HTTP (the daemon's /debug/failpoints endpoints, behind
// the -failpoints flag). The action grammar:
//
//	[count*]error[(message)]   Hit returns an *InjectedError
//	[count*]panic[(message)]   Hit panics
//	[count*]sleep(duration)    Hit sleeps, then returns nil
//	off                        equivalent to Disarm
//
// A count prefix limits the number of triggers ("1*panic" fires once and
// disarms itself); without one the point fires on every Hit until
// disarmed.
//
// The package is always compiled — only the chaos test suite is gated
// behind the "failpoint" build tag — so the disarmed fast path must stay
// free: Hit is a single atomic load when no point in the process is armed.
package failpoint

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// armedCount is the process-wide number of armed points; Hit's fast path
// is a single load of it.
var armedCount atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type mode uint8

const (
	modeError mode = iota
	modePanic
	modeSleep
)

type point struct {
	mode  mode
	msg   string
	delay time.Duration
	// remaining is the number of triggers left; <0 means unlimited.
	remaining int64
	spec      string
}

// ErrInjected is the sentinel every injected error wraps, so call sites
// and tests can errors.Is their way past the per-point message.
var ErrInjected = errors.New("failpoint: injected error")

// InjectedError is the error returned by an armed error-mode point.
type InjectedError struct {
	// Name is the failpoint that fired.
	Name string
	// Msg is the optional message from the arming spec.
	Msg string
}

func (e *InjectedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("failpoint %s: injected error: %s", e.Name, e.Msg)
	}
	return fmt.Sprintf("failpoint %s: injected error", e.Name)
}

func (e *InjectedError) Unwrap() error { return ErrInjected }

// Active reports whether any failpoint in the process is armed.
func Active() bool { return armedCount.Load() != 0 }

// Hit triggers the named point if armed: error mode returns an
// *InjectedError, panic mode panics with a recognisable value, sleep mode
// blocks for the configured duration and returns nil. Disarmed points (the
// production state) cost one atomic load.
func Hit(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	if p.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			delete(points, name)
			armedCount.Add(-1)
		}
	}
	m, msg, delay := p.mode, p.msg, p.delay
	mu.Unlock()
	switch m {
	case modePanic:
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("failpoint %s: %s", name, msg))
	case modeSleep:
		time.Sleep(delay)
		return nil
	default:
		return &InjectedError{Name: name, Msg: msg}
	}
}

// Arm installs (or replaces) the named point with an action spec; see the
// package comment for the grammar. Arming with "off" disarms.
func Arm(name, spec string) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return errors.New("failpoint: empty name")
	}
	p, err := parse(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	_, had := points[name]
	if p == nil {
		if had {
			delete(points, name)
			armedCount.Add(-1)
		}
		return nil
	}
	points[name] = p
	if !had {
		armedCount.Add(1)
	}
	return nil
}

// Disarm removes the named point; disarming an unarmed point is a no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armedCount.Add(-1)
	}
}

// DisarmAll removes every armed point (test cleanup).
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int64(len(points)))
	points = map[string]*point{}
}

// List returns a snapshot of the armed points as name → arming spec.
func List() map[string]string {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]string, len(points))
	for name, p := range points {
		out[name] = p.spec
	}
	return out
}

// ArmFromEnv parses a semicolon-separated name=action list (the
// HB_FAILPOINTS format) and arms every entry. An empty string is a no-op.
func ArmFromEnv(env string) error {
	for _, entry := range strings.Split(env, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("failpoint: bad env entry %q (want name=action)", entry)
		}
		if err := Arm(name, spec); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the sorted names of all armed points.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// parse turns an action spec into a point; a nil point means "off".
func parse(spec string) (*point, error) {
	orig := spec
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	p := &point{remaining: -1, spec: orig}
	if i := strings.Index(spec, "*"); i >= 0 {
		n, err := strconv.ParseInt(strings.TrimSpace(spec[:i]), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count in %q", orig)
		}
		p.remaining = n
		spec = strings.TrimSpace(spec[i+1:])
	}
	verb, arg := spec, ""
	if i := strings.Index(spec, "("); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("unclosed argument in %q", orig)
		}
		verb, arg = spec[:i], spec[i+1:len(spec)-1]
	}
	switch verb {
	case "error":
		p.mode, p.msg = modeError, arg
	case "panic":
		p.mode, p.msg = modePanic, arg
	case "sleep":
		if arg == "" {
			return nil, fmt.Errorf("sleep needs a duration in %q", orig)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad sleep duration in %q", orig)
		}
		p.mode, p.delay = modeSleep, d
	default:
		return nil, fmt.Errorf("unknown action %q (want error, panic, sleep or off)", verb)
	}
	return p, nil
}
