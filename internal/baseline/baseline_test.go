package baseline

import (
	"math/rand"
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/cluster"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sta"
	"hummingbird/internal/testlib"
)

// blockVsEnum compiles the network and runs BlockVsEnum on a fresh state.
func blockVsEnum(nw *cluster.Network) (int, int) {
	cd := cluster.Compile(nw)
	return BlockVsEnum(cd, sta.NewState(cd))
}

func parse(t *testing.T, text string) *netlist.Design {
	t.Helper()
	d, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOpaqueLibrary(t *testing.T) {
	lib := testlib.Lib()
	opq, err := OpaqueLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	if opq.Len() != lib.Len() {
		t.Fatalf("cell count changed: %d vs %d", opq.Len(), lib.Len())
	}
	if opq.Cell("LAT").Kind != celllib.EdgeTriggered {
		t.Fatal("LAT not opaque")
	}
	if opq.Cell("FFD").Kind != celllib.EdgeTriggered {
		t.Fatal("FFD changed")
	}
	if opq.Cell("BUFD").Kind != celllib.Comb {
		t.Fatal("comb cell changed")
	}
	// The original library is untouched.
	if lib.Cell("LAT").Kind != celllib.Transparent {
		t.Fatal("source library mutated")
	}
	// Sync parameters deep-copied.
	opq.Cell("LAT").Sync.Dsetup = 999
	if lib.Cell("LAT").Sync.Dsetup == 999 {
		t.Fatal("sync timing aliased")
	}
}

// borrowText is feasible only through transparent-latch borrowing: 55ns of
// logic between l1 (phi1, trail 40ns) and the phi2 capture at 90ns requires
// l1 to assert before 35ns — inside the transparency window.
const borrowText = `
design borrow
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D1NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`

func TestOpaqueMissesBorrowing(t *testing.T) {
	lib := testlib.Lib()
	cmp, err := CompareBorrowing(lib, parse(t, borrowText), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.TransparentOK {
		t.Fatalf("transparent analysis should pass: %+v", cmp)
	}
	if cmp.OpaqueOK {
		t.Fatalf("opaque analysis should flag the borrowing path: %+v", cmp)
	}
	if cmp.OpaqueSlow == 0 || cmp.OpaqueWorst >= 0 {
		t.Fatalf("opaque violation detail wrong: %+v", cmp)
	}
}

func TestOpaqueAgreesOnFFDesigns(t *testing.T) {
	// Pure flip-flop designs have no transparency; both analyses agree.
	text := `
design ff
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 FFD D=IN CK=phi Q=q1
inst g1 D55NS A=q1 Y=n1
inst f2 FFD D=n1 CK=phi Q=q2
inst g2 D1NS A=q2 Y=OUT
end
`
	lib := testlib.Lib()
	cmp, err := CompareBorrowing(lib, parse(t, text), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TransparentOK != cmp.OpaqueOK {
		t.Fatalf("FF design: analyses disagree: %+v", cmp)
	}
	if cmp.TransparentWorst != cmp.OpaqueWorst {
		t.Fatalf("FF design: worst slacks differ: %+v", cmp)
	}
}

func TestAnalyzeOpaqueNoDOF(t *testing.T) {
	lib := testlib.Lib()
	rep, err := AnalyzeOpaque(lib, parse(t, borrowText), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("opaque pass unexpected")
	}
	// With no DOF anywhere, Algorithm 1 must settle in one forward sweep.
	if rep.ForwardSweeps > 1 || rep.BackwardSweeps > 1 {
		t.Fatalf("opaque analysis iterated: %d/%d", rep.ForwardSweeps, rep.BackwardSweeps)
	}
}

func TestEnumerationMatchesBlock(t *testing.T) {
	// Reconvergent positive-unate network (equal rise/fall delays).
	nw := testlib.Network(t, `
design recon
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUFD A=IN Y=a
inst g2 BUFD A=a Y=b
inst g3 BUFD A=a Y=c
inst g4 D5NS A=b Y=d
inst g5 BUFD A=c Y=d2
inst g6 D1NS A=d Y=e
inst g7 D1NS A=d2 Y=e2
inst l1 LAT D=e G=phi1 Q=q1
inst f1 FFD D=e2 CK=phi2 Q=q2
inst g8 BUFD A=q1 Y=o1
inst g9 BUFD A=q2 Y=o2
inst gx BUFD A=o1 Y=OUT2x
inst f3 FFD D=o2 CK=phi2 Q=q3
inst f4 FFD D=OUT2x CK=phi2 Q=q4
inst gz BUFD A=q3 Y=OUT
end
`)
	mismatches, paths := blockVsEnum(nw)
	if mismatches != 0 {
		t.Fatalf("block vs enumeration: %d mismatching nets", mismatches)
	}
	if paths == 0 {
		t.Fatal("no paths enumerated")
	}
}

// Property: on random positive-unate DAG clusters, block equals
// enumeration net-for-net.
func TestEnumerationMatchesBlockRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString(`
design rnd
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
`)
		// Random layered DAG of buffers with random fixed delays.
		nLayers := 2 + r.Intn(3)
		prev := []string{"IN"}
		gate := 0
		// INVD's asymmetric rise/fall delays stress the transition-space
		// equivalence.
		cells := []string{"BUFD", "D1NS", "D5NS", "INVD"}
		var last []string
		for l := 0; l < nLayers; l++ {
			width := 1 + r.Intn(3)
			var cur []string
			for w := 0; w < width; w++ {
				src := prev[r.Intn(len(prev))]
				net := nodeName(l, w)
				sb.WriteString("inst g")
				sb.WriteString(nodeName(gate, 0))
				gate++
				sb.WriteString(" " + cells[r.Intn(len(cells))])
				sb.WriteString(" A=" + src + " Y=" + net + "\n")
				cur = append(cur, net)
			}
			prev = append(prev, cur...)
			last = cur
		}
		// Capture a couple of nets with FFs.
		sb.WriteString("inst fcap FFD D=" + last[len(last)-1] + " CK=phi2 Q=qc\n")
		sb.WriteString("inst gout BUFD A=qc Y=OUT\nend\n")
		nw := testlib.Network(t, sb.String())
		if mism, _ := blockVsEnum(nw); mism != 0 {
			t.Fatalf("seed %d: %d mismatches", seed, mism)
		}
	}
}

func nodeName(a, b int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	return string(alpha[a%26]) + string(alpha[b%26]) + string(alpha[(a/26)%26])
}

func TestEnumerationCountsPaths(t *testing.T) {
	// Diamond ×2 gives 4 paths input→output (plus stubs).
	nw := testlib.Network(t, `
design dia
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUFD A=IN Y=a1
inst g2 BUFD A=IN Y=a2
inst gx XORD A=a1 B=a2 Y=b
inst g3 BUFD A=b Y=c1
inst g4 BUFD A=b Y=c2
inst gy XORD A=c1 B=c2 Y=d
inst f1 FFD D=d CK=phi2 Q=q
inst go BUFD A=q Y=OUT
end
`)
	cd := cluster.Compile(nw)
	enum := EnumerateSlacks(cd, sta.NewState(cd))
	// Transition-space paths IN→d: 2 launch transitions × 2 diamond arms
	// × 2 XOR output transitions × 2 arms × 2 XOR transitions = 32; the
	// q→OUT cluster adds one path per launch transition. Total 34.
	if enum.Paths != 34 {
		t.Fatalf("paths = %d, want 34", enum.Paths)
	}
}
