// Package baseline implements the comparison methods the paper positions
// itself against (§2):
//
//   - McWilliams-style analysis [5]: portions of combinational logic are
//     analysed individually with every latch treated as opaque — input
//     closure and output assertion both pinned to the trailing control edge.
//     It "can handle complicated clocking schemes, but it can not model the
//     behaviour of transparent latches": designs that are feasible only
//     through cycle borrowing are reported slow.
//
//   - Explicit path enumeration: the slack definition of §6 computed
//     literally, path by path. Hitchcock's block method [6] computes the
//     same numbers (neither discards false paths) at a fraction of the
//     cost; the A1 ablation measures that gap and the equivalence property
//     test in this package checks the numbers agree.
package baseline

import (
	"fmt"

	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sta"
)

// OpaqueLibrary clones every cell of lib, converting transparent latches
// and tristate drivers into edge-triggered elements (capture and assert on
// the effective trailing control edge). Cell names are preserved, so any
// design referencing lib resolves unchanged against the result.
func OpaqueLibrary(lib *celllib.Library) (*celllib.Library, error) {
	out := celllib.NewLibrary(lib.Name + "+opaque")
	for _, name := range lib.Names() {
		c := lib.Cell(name)
		if c.Kind != celllib.Transparent && c.Kind != celllib.Tristate {
			if err := out.Add(c); err != nil {
				return nil, fmt.Errorf("baseline: %w", err)
			}
			continue
		}
		clone := *c
		clone.Kind = celllib.EdgeTriggered
		st := *c.Sync
		clone.Sync = &st
		if err := out.Add(&clone); err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
	}
	return out, nil
}

// AnalyzeOpaque runs the full analysis pipeline with the opaque-latch
// model. Because no element retains a degree of freedom, Algorithm 1
// degenerates to a single classic static timing analysis — exactly the
// McWilliams-class method.
func AnalyzeOpaque(lib *celllib.Library, design *netlist.Design, opts core.Options) (*core.Report, error) {
	opq, err := OpaqueLibrary(lib)
	if err != nil {
		return nil, err
	}
	a, err := core.Load(opq, design, opts)
	if err != nil {
		return nil, err
	}
	for _, e := range a.CD.Elems {
		if e.HasDOF() {
			return nil, fmt.Errorf("baseline: opaque model left a degree of freedom on %s", e.Name())
		}
	}
	return a.IdentifySlowPaths()
}

// EnumerationResult carries the per-net slacks computed by explicit path
// enumeration, plus the number of paths visited (the cost driver the block
// method avoids).
type EnumerationResult struct {
	NetSlack []clock.Time
	Paths    int
}

// EnumerateSlacks computes every net's slack by walking every
// input→output path of every cluster pass explicitly — in *transition
// space*: a path node is a (net, rise/fall) pair and each arc maps input
// transitions to output transitions through its unateness, exactly as the
// block propagation does. The result therefore matches the block method
// net-for-net (the equivalence property the A1 ablation relies on), at a
// cost exponential in the worst case — usable on test- and example-scale
// designs only, which is the paper's point about the block method.
func EnumerateSlacks(cd *cluster.CompiledDesign, st *sta.AnalysisState) *EnumerationResult {
	nw := cd.Network
	res := &EnumerationResult{NetSlack: make([]clock.Time, len(nw.Nets))}
	for i := range res.NetSlack {
		res.NetSlack[i] = clock.Inf
	}
	T := nw.Clocks.Overall()
	for _, cl := range nw.Clusters {
		for pi, beta := range cl.Plan.Breaks {
			closures := map[int]clock.Time{} // net -> closure (min over endpoints)
			for oi, out := range cl.Outputs {
				if p, ok := cl.Plan.Assign[oi]; !ok || p != pi {
					continue
				}
				e := nw.Elems[out.Elem]
				c := breakopen.ClosePos(e.IdealClose, beta, T) + e.InputOffsetAt(st.Odz[out.Elem])
				if prev, ok := closures[out.Net]; !ok || c < prev {
					closures[out.Net] = c
				}
			}
			for _, in := range cl.Inputs {
				e := nw.Elems[in.Elem]
				assert := breakopen.AssertPos(e.IdealAssert, beta, T) + e.OutputOffsetAt(st.Odz[in.Elem])
				var walk func(net int, rise bool, delay clock.Time, trail []int)
				walk = func(net int, rise bool, delay clock.Time, trail []int) {
					trail = append(trail, net)
					if c, ok := closures[net]; ok {
						res.Paths++
						slack := c - assert - delay
						for _, n := range trail {
							if slack < res.NetSlack[n] {
								res.NetSlack[n] = slack
							}
						}
					}
					for _, ai := range cl.ArcsFrom(net) {
						arc := &cl.Arcs[ai]
						// Transition-space successors of (net, rise).
						switch arc.Sense {
						case celllib.PositiveUnate:
							if rise {
								walk(arc.To, true, delay+arc.D.MaxRise, trail)
							} else {
								walk(arc.To, false, delay+arc.D.MaxFall, trail)
							}
						case celllib.NegativeUnate:
							if rise {
								walk(arc.To, false, delay+arc.D.MaxFall, trail)
							} else {
								walk(arc.To, true, delay+arc.D.MaxRise, trail)
							}
						default: // NonUnate: either output transition
							walk(arc.To, true, delay+arc.D.MaxRise, trail)
							walk(arc.To, false, delay+arc.D.MaxFall, trail)
						}
					}
				}
				// Both transitions assert together at a cluster input.
				walk(in.Net, true, 0, nil)
				walk(in.Net, false, 0, nil)
			}
		}
	}
	return res
}

// CompareBorrowing runs both the full (transparent) and the opaque analysis
// on one design and reports the violation counts — the A2 ablation row.
type BorrowingComparison struct {
	TransparentOK    bool
	OpaqueOK         bool
	TransparentSlow  int
	OpaqueSlow       int
	TransparentWorst clock.Time
	OpaqueWorst      clock.Time
}

// CompareBorrowing evaluates the value of transparent-latch modelling on a
// design: the opaque baseline flags every cycle-borrowing path as slow.
func CompareBorrowing(lib *celllib.Library, design *netlist.Design, opts core.Options) (*BorrowingComparison, error) {
	a, err := core.Load(lib, design, opts)
	if err != nil {
		return nil, err
	}
	full, err := a.IdentifySlowPaths()
	if err != nil {
		return nil, err
	}
	opq, err := AnalyzeOpaque(lib, design, opts)
	if err != nil {
		return nil, err
	}
	return &BorrowingComparison{
		TransparentOK: full.OK, OpaqueOK: opq.OK,
		TransparentSlow: len(full.SlowElems), OpaqueSlow: len(opq.SlowElems),
		TransparentWorst: full.WorstSlack(), OpaqueWorst: opq.WorstSlack(),
	}, nil
}

// BlockVsEnum compares the block method's net slacks with enumeration on
// the network's current offsets; it returns the number of nets whose
// slacks disagree (expected zero — the transition-space enumeration is
// exact) and the enumerated path count.
func BlockVsEnum(cd *cluster.CompiledDesign, st *sta.AnalysisState) (mismatches, paths int) {
	block := sta.Analyze(cd, st)
	enum := EnumerateSlacks(cd, st)
	return CountMismatches(block, enum), enum.Paths
}

// CountMismatches diffs an existing block result against an existing
// enumeration result, so callers that already ran (and timed) both do not
// pay for a second pair of runs.
func CountMismatches(block *sta.Result, enum *EnumerationResult) int {
	mismatches := 0
	for n := range block.NetSlack {
		b, e := block.NetSlack[n], enum.NetSlack[n]
		if b == clock.Inf && e == clock.Inf {
			continue
		}
		if b != e {
			mismatches++
		}
	}
	return mismatches
}
