package hummingbird

// The benchmark harness regenerating the paper's evaluation: one benchmark
// per Table-1 row and per figure, plus the A1–A5 ablations of DESIGN.md §4.
// Absolute numbers are this machine's, not the paper's VAX 8800 CPU
// seconds; the comparisons that must hold are structural — see
// EXPERIMENTS.md. Pretty-printed tables come from cmd/benchtables.

import (
	"fmt"
	"math/rand"
	"testing"

	"hummingbird/internal/baseline"
	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/core"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/incremental"
	"hummingbird/internal/logic"
	"hummingbird/internal/netlist"
	"hummingbird/internal/resynth"
	"hummingbird/internal/sim"
	"hummingbird/internal/sta"
	"hummingbird/internal/syncelem"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/workload"
)

var benchLib = celllib.Default()

// mustGen unwraps a workload generator; the benchmark configurations are
// static and valid by construction.
func mustGen(d *netlist.Design, err error) *netlist.Design {
	if err != nil {
		panic(err)
	}
	return d
}

// infallible adapts the generators that cannot fail to the fallible
// signature the shared harnesses take.
func infallible(mk func() *netlist.Design) func() (*netlist.Design, error) {
	return func() (*netlist.Design, error) { return mk(), nil }
}

// loadOnce elaborates a design once (outside the timed loop).
func loadOnce(b *testing.B, d *netlist.Design) *core.Analyzer {
	b.Helper()
	a, err := core.Load(benchLib, d, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// benchTable1 measures one Table-1 row: the full pre-processing + Algorithm
// 1 pipeline per iteration, matching the paper's reported quantities.
func benchTable1(b *testing.B, mk func() (*netlist.Design, error)) {
	d, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := core.Load(benchLib, d, core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analysis", func(b *testing.B) {
		a := loadOnce(b, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.ResetOffsets()
			rep, err := a.IdentifySlowPaths()
			if err != nil {
				b.Fatal(err)
			}
			if !rep.OK {
				b.Fatal("benchmark design not timing-clean")
			}
		}
	})
}

func BenchmarkTable1_DES(b *testing.B)  { benchTable1(b, workload.DES) }
func BenchmarkTable1_ALU(b *testing.B)  { benchTable1(b, workload.ALU) }
func BenchmarkTable1_SM1F(b *testing.B) { benchTable1(b, infallible(workload.SM1F)) }
func BenchmarkTable1_SM1H(b *testing.B) { benchTable1(b, infallible(workload.SM1H)) }

// pickEditInst finds an instance whose delay adjustment stays on the
// engine's incremental path (a combinational gate off the clock cones).
func pickEditInst(b *testing.B, eng *incremental.Engine) string {
	b.Helper()
	d := eng.Design()
	for i := range d.Instances {
		name := d.Instances[i].Name
		out, err := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: name, Delta: 100})
		if err != nil {
			continue
		}
		if _, err := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: name, Delta: -100}); err != nil {
			b.Fatal(err)
		}
		if out.Incremental {
			return name
		}
	}
	b.Fatal("no incrementally editable instance")
	return ""
}

// benchIncrementalEdit measures re-analysis after a single-gate delay edit:
// the "incremental" case patches the live engine (alternating ±100ps so the
// state never drifts); the "full" case re-elaborates and re-analyzes from
// scratch, which is what Algorithm 3 pays without the engine. The ratio is
// the speedup column of cmd/benchtables' Table 1.
func benchIncrementalEdit(b *testing.B, mk func() (*netlist.Design, error)) {
	b.Run("incremental", func(b *testing.B) {
		d, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		eng, err := incremental.Open(benchLib, d, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		inst := pickEditInst(b, eng)
		delta := clock.Time(100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: inst, Delta: delta})
			if err != nil {
				b.Fatal(err)
			}
			if !out.Incremental {
				b.Fatal("edit fell back to full analysis")
			}
			delta = -delta
		}
	})
	b.Run("full", func(b *testing.B) {
		d, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := core.Load(benchLib, d, core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.IdentifySlowPaths(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIncrementalEdit_DES(b *testing.B)  { benchIncrementalEdit(b, workload.DES) }
func BenchmarkIncrementalEdit_ALU(b *testing.B)  { benchIncrementalEdit(b, workload.ALU) }
func BenchmarkIncrementalEdit_SM1F(b *testing.B) { benchIncrementalEdit(b, infallible(workload.SM1F)) }
func BenchmarkIncrementalEdit_SM1H(b *testing.B) { benchIncrementalEdit(b, infallible(workload.SM1H)) }

// BenchmarkFigure1_Passes measures the §7 pre-processing on the Figure 1
// configuration and asserts the minimum pass count (2) it exists to prove.
func BenchmarkFigure1_Passes(b *testing.B) {
	d := workload.Figure1()
	for i := 0; i < b.N; i++ {
		a, err := core.Load(benchLib, d, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		mid := a.CD.NetIdx["m"]
		for _, cl := range a.CD.Clusters {
			if cl.LocalIndex(mid) >= 0 && cl.Plan.Passes() != 2 {
				b.Fatalf("passes = %d, want 2", cl.Plan.Passes())
			}
		}
	}
}

// BenchmarkFigure2_GenericModel measures the generic-element effective-time
// evaluation (the min/max composition of Figure 2).
func BenchmarkFigure2_GenericModel(b *testing.B) {
	cs, err := clock.NewSet(clock.Signal{Name: "phi", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 20 * clock.Ns})
	if err != nil {
		b.Fatal(err)
	}
	st := &celllib.SyncTiming{Dsetup: 150, Ddz: 280, Dcz: 320}
	elems, err := syncelem.Build("e", celllib.Transparent, st, cs, 0, false, 2000, 1000)
	if err != nil {
		b.Fatal(err)
	}
	e := elems[0]
	var sink clock.Time
	for i := 0; i < b.N; i++ {
		sink += e.InputClosure() + e.OutputAssert()
	}
	_ = sink
}

// BenchmarkFigure3_SlackTransfer measures the offset operations of §6 on a
// transparent latch (the Figure 3 relationship drives every transfer).
func BenchmarkFigure3_SlackTransfer(b *testing.B) {
	cs, err := clock.NewSet(clock.Signal{Name: "phi", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 20 * clock.Ns})
	if err != nil {
		b.Fatal(err)
	}
	st := &celllib.SyncTiming{Dsetup: 150, Ddz: 280, Dcz: 320}
	elems, err := syncelem.Build("e", celllib.Transparent, st, cs, 0, false, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	e := elems[0]
	for i := 0; i < b.N; i++ {
		e.CompleteForward(1000)
		e.CompleteBackward(1000)
	}
}

// BenchmarkFigure4_BreakOpen measures the exhaustive break-set search on
// the Figure 4 example's eight-edge circle.
func BenchmarkFigure4_BreakOpen(b *testing.B) {
	T := clock.Time(800)
	cands := make([]clock.Time, 8)
	for i := range cands {
		cands[i] = clock.Time(100 * i)
	}
	outs := []breakopen.Output{{ID: 0, Close: 200, Asserts: []clock.Time{400}}}
	for i := 0; i < b.N; i++ {
		if _, err := breakopen.Solve(T, cands, outs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblation_BlockVsEnum compares the block method against explicit
// path enumeration on SM1F (A1).
func BenchmarkAblation_BlockVsEnum(b *testing.B) {
	a := loadOnce(b, workload.SM1F())
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sta.Analyze(a.CD, a.St)
		}
	})
	b.Run("enumerate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.EnumerateSlacks(a.CD, a.St)
		}
	})
}

// BenchmarkAblation_Borrowing compares transparent vs opaque latch
// modelling on a borrowing pipeline (A2) and asserts the qualitative
// outcome: transparent passes, opaque fails.
func BenchmarkAblation_Borrowing(b *testing.B) {
	text := `
design borrow
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUF_X1 A=IN Y=w0
inst l1 DLATCH_X1 D=w0 G=phi1 Q=c0
`
	for i := 0; i < 30; i++ {
		text += fmt.Sprintf("inst c%d INV_X1 A=c%d Y=c%d\n", i, i, i+1)
	}
	text += "inst f2 DFF_X1 D=c30 CK=phi2 Q=q2\ninst g3 BUF_X1 A=q2 Y=OUT\nend\n"
	d, err := netlist.ParseString(text)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cmp, err := baseline.CompareBorrowing(benchLib, d, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.TransparentOK || cmp.OpaqueOK {
			b.Fatalf("A2 shape violated: %+v", cmp)
		}
	}
}

// BenchmarkAblation_BreakSearch compares exhaustive and greedy break-set
// search on random circular-interval instances (A3).
func BenchmarkAblation_BreakSearch(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	type inst struct {
		T     clock.Time
		cands []clock.Time
		outs  []breakopen.Output
	}
	mk := func() inst {
		T := clock.Time(1000)
		var cands []clock.Time
		for v := clock.Time(0); v < T; v += 50 {
			cands = append(cands, v)
		}
		outs := make([]breakopen.Output, 8)
		for i := range outs {
			c := cands[r.Intn(len(cands))]
			outs[i] = breakopen.Output{ID: i, Close: c, Asserts: []clock.Time{
				cands[r.Intn(len(cands))], cands[r.Intn(len(cands))],
			}}
		}
		return inst{T, cands, outs}
	}
	instances := make([]inst, 16)
	for i := range instances {
		instances[i] = mk()
	}
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := instances[i%len(instances)]
			if _, err := breakopen.Solve(in.T, in.cands, in.outs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := instances[i%len(instances)]
			if _, err := breakopen.SolveGreedy(in.T, in.cands, in.outs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRedesignLoop measures Algorithm 3 to closure on the marginally
// slow sizing fixture (A4).
func BenchmarkRedesignLoop(b *testing.B) {
	mk := func() *netlist.Design {
		text := `
design sizing
clock phi period 2200ps rise 0 fall 880ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=c0
`
		for i := 0; i < 6; i++ {
			text += fmt.Sprintf("inst i%d INV_X1 A=c%d Y=c%d\n", i, i, i+1)
			for k := 0; k < 3; k++ {
				text += fmt.Sprintf("inst d%d_%d INV_X1 A=c%d Y=x%d_%d\n", i, k, i, i, k)
			}
		}
		text += "inst f2 DFF_X1 D=c6 CK=phi Q=qo\ninst go BUF_X1 A=qo Y=OUT\nend\n"
		d, err := netlist.ParseString(text)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	for i := 0; i < b.N; i++ {
		res, err := resynth.Run(benchLib, mk(), core.DefaultOptions(), 40)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK || len(res.Changes) == 0 {
			b.Fatalf("A4 shape violated: %+v", res)
		}
	}
}

// benchScaling measures full load+analysis at a given cell count (A5).
func benchScaling(b *testing.B, cells int) {
	d := mustGen(workload.Scaling(cells, 11))
	for i := 0; i < b.N; i++ {
		a, err := core.Load(benchLib, d, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.IdentifySlowPaths(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaling_250(b *testing.B)  { benchScaling(b, 250) }
func BenchmarkScaling_500(b *testing.B)  { benchScaling(b, 500) }
func BenchmarkScaling_1000(b *testing.B) { benchScaling(b, 1000) }
func BenchmarkScaling_2000(b *testing.B) { benchScaling(b, 2000) }
func BenchmarkScaling_4000(b *testing.B) { benchScaling(b, 4000) }

// BenchmarkSTA_Sweep isolates one block-analysis sweep over the DES-sized
// network — the inner loop whose cost dominates Table 1's analysis column.
func BenchmarkSTA_Sweep(b *testing.B) {
	a := loadOnce(b, mustGen(workload.DES()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sta.Analyze(a.CD, a.St)
	}
}

// BenchmarkAblation_Incremental compares Algorithm 1 with incremental
// sweeps (recompute only clusters adjacent to moved elements) against the
// paper's plain full-recompute sweeps (A6). The gap appears when the
// clocks are tight enough that the iterations actually run; at the Table-1
// clocks the first sweep already converges and the modes tie.
func BenchmarkAblation_Incremental(b *testing.B) {
	// DES with one gate slowed by 55ns: exactly one of the 18 stage
	// clusters needs cycle borrowing, so Algorithm 1 iterates but each
	// sweep only moves a couple of latches — the case incremental
	// re-analysis exists for. (When most elements move every sweep the
	// modes tie; see EXPERIMENTS.md.)
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.FullSweeps = mode.full
			opts.Adjustments = map[string]clock.Time{"g_s3l2w5": 55 * clock.Ns}
			a, err := core.Load(benchLib, mustGen(workload.DES()), opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.ResetOffsets()
				rep, err := a.IdentifySlowPaths()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK {
					b.Fatal("fixture should close via borrowing")
				}
				if rep.ForwardSweeps < 2 {
					b.Fatal("fixture should iterate")
				}
			}
		})
	}
}

// BenchmarkSTA_SweepParallel measures the goroutine-parallel variant of the
// block analysis on the DES-sized network (same results as the sequential
// sweep; see internal/sta's equivalence test).
func BenchmarkSTA_SweepParallel(b *testing.B) {
	a := loadOnce(b, mustGen(workload.DES()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sta.AnalyzeParallel(a.CD, a.St, 4)
	}
}

// BenchmarkClusterBuild isolates elaboration (cluster generation + §7
// pre-processing), Table 1's pre-processing column.
func BenchmarkClusterBuild(b *testing.B) {
	d := mustGen(workload.DES())
	if err := d.Validate(benchLib); err != nil {
		b.Fatal(err)
	}
	cs, err := d.ClockSet()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc, err := delaycalc.New(benchLib, d, delaycalc.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.Build(benchLib, d, cs, calc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures the dynamic-validation harness on the ALU
// workload: one full 10-cycle worst-case simulation per iteration.
func BenchmarkSimulator(b *testing.B) {
	nwA := loadOnce(b, mustGen(workload.ALU())).CD.Network
	s, err := sim.New(nwA)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(10, func(cycle int, port string) logic.Value {
			return logic.FromBool(r.Intn(2) == 0)
		})
	}
}

// BenchmarkTelemetryOverhead measures the cost of the observability layer
// on the analysis hot path, using the BenchmarkAblation_Incremental
// fixture (DES with one slowed gate) so the fixed-point iterations
// actually run. "off" is the shipping default — the counters' single
// atomic-bool check must stay in the noise (<2%) and allocate nothing —
// and "on" is the full metrics-collection mode. Convergence tracing is a
// separate switch (Options.Trace) and is not exercised here: its cost is
// one slog line per sweep, paid only when requested.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.enabled {
				telemetry.Enable()
				defer telemetry.Disable()
			} else {
				telemetry.Disable()
			}
			opts := core.DefaultOptions()
			opts.Adjustments = map[string]clock.Time{"g_s3l2w5": 55 * clock.Ns}
			a, err := core.Load(benchLib, mustGen(workload.DES()), opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.ResetOffsets()
				rep, err := a.IdentifySlowPaths()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK || rep.ForwardSweeps < 2 {
					b.Fatal("fixture should iterate and close")
				}
			}
		})
	}
}
