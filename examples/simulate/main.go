// Simulate: dynamic validation of the static verdict. The same two-phase
// pipeline is analysed statically (Algorithm 1) and then simulated with
// worst-case gate delays under random stimulus; the capture log shows the
// latches latching settled, determined values — and a deliberately
// over-clocked variant shows the opposite.
//
// Run with:
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/logic"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sim"
)

const designText = `
design demo
clock phi1 period %dps rise 0 fall %dps
clock phi2 period %dps rise %dps fall %dps
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst l2 DFF_X1 D=n3 CK=phi2 Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
`

func run(periodPs int) {
	text := fmt.Sprintf(designText, periodPs, periodPs*2/5,
		periodPs, periodPs/2, periodPs*9/10)
	d, err := netlist.ParseString(text)
	if err != nil {
		log.Fatal(err)
	}
	lib := celllib.Default()
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== period %dps: static verdict ok=%v (worst slack %v) ==\n",
		periodPs, rep.OK, rep.WorstSlack())

	s, err := sim.New(a.CD.Network)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	tr := s.Run(12, func(cycle int, port string) logic.Value {
		return logic.FromBool(r.Intn(2) == 0)
	})
	warm := clock.Time(4) * a.CD.Clocks.Overall()
	fmt.Println("capture log (after warm-up):")
	for _, c := range tr.Captures {
		if c.At < warm || c.Inst != "l2" {
			continue
		}
		fmt.Printf("  %-4s captured %v at %v\n", c.Inst, c.V, c.At)
	}
	viol := sim.CheckSetup(a.CD.Network, tr, warm)
	if len(viol) == 0 {
		fmt.Println("dynamic check: no setup violations, no X captures")
	}
	for i, v := range viol {
		if i >= 3 {
			fmt.Printf("  ... %d more\n", len(viol)-3)
			break
		}
		kind := "setup window hit"
		if v.CapturedX {
			kind = "captured X"
		}
		fmt.Printf("  VIOLATION %s at %v (%s, last change %v)\n", v.Inst, v.At, kind, v.LastChange)
	}
	fmt.Println()
}

func main() {
	run(10000) // 10ns: comfortably feasible
	run(900)   // 0.9ns: statically slow — watch the simulator agree
}
