// Redesign: the analysis–redesign loop of Algorithm 3. A marginally slow
// flip-flop chain is analysed; Algorithm 2's ready/required times become
// per-arc delay budgets; the gate-sizing operator upsizes the most
// promising gate on the worst slow path; repeat until every path is fast
// enough. The run prints each iteration's change and the area the closure
// cost.
//
// Run with:
//
//	go run ./examples/redesign
package main

import (
	"fmt"
	"log"
	"strings"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/resynth"
)

func design() *netlist.Design {
	var sb strings.Builder
	sb.WriteString(`
design sizing
clock phi period 2200ps rise 0 fall 880ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=c0
`)
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "inst i%d INV_X1 A=c%d Y=c%d\n", i, i, i+1)
		for d := 0; d < 3; d++ {
			// Side loads that make the chain slow at drive X1.
			fmt.Fprintf(&sb, "inst d%d_%d INV_X1 A=c%d Y=x%d_%d\n", i, d, i, i, d)
		}
	}
	sb.WriteString(`inst f2 DFF_X1 D=c6 CK=phi Q=qo
inst go BUF_X1 A=qo Y=OUT
end
`)
	d, err := netlist.ParseString(sb.String())
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func main() {
	lib := celllib.Default()
	d := design()

	// Initial verdict.
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial design: ok=%v, worst slack %v\n", rep.OK, rep.WorstSlack())
	if len(rep.SlowPaths) > 0 {
		p := rep.SlowPaths[0]
		fmt.Printf("worst path: %s -> %s, delay %v, slack %v\n",
			a.CD.Elems[p.FromElem].Name(), a.CD.Elems[p.ToElem].Name(), p.Delay, p.Slack)
	}

	// Algorithm 3.
	res, err := resynth.Run(lib, d, core.DefaultOptions(), 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nredesign loop: closure ok=%v in %d iterations\n", res.OK, res.Iterations)
	for i, ch := range res.Changes {
		fmt.Printf("  step %d: %s %s -> %s (estimated gain %v)\n",
			i+1, ch.Inst, ch.FromCell, ch.ToCell, ch.Gain)
	}
	fmt.Printf("area: %d -> %d (+%d)\n", res.AreaBefore, res.AreaAfter, res.AreaAfter-res.AreaBefore)
	fmt.Printf("final worst slack: %v\n", res.WorstSlack)
}
