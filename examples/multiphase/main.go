// Multiphase: the paper's Figure 1 configuration — a logic gate whose
// inputs are updated by latches on two different clock phases and whose
// output is captured by latches on two further phases. The gate is "time
// multiplexed within each overall clock period": its output must settle to
// two different valid states per cycle, so the shared cluster needs two
// analysis passes — and the §7 pre-processing proves two is the minimum.
//
// Run with:
//
//	go run ./examples/multiphase
package main

import (
	"fmt"
	"log"
	"os"

	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/report"
	"hummingbird/internal/workload"
)

func main() {
	lib := celllib.Default()
	d := workload.Figure1()
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	report.Summary(os.Stdout, a, rep)
	fmt.Println()

	// Locate the cluster owning the shared gate's output net "m".
	mid := a.CD.NetIdx["m"]
	for _, cl := range a.CD.Clusters {
		if cl.LocalIndex(mid) < 0 {
			continue
		}
		fmt.Printf("cluster %d holds the shared gate; minimum analysis passes: %d\n",
			cl.ID, cl.Plan.Passes())
		T := a.CD.Clocks.Overall()
		for pi, beta := range cl.Plan.Breaks {
			fmt.Printf("  pass %d: period broken open at %v\n", pi, beta)
			for oi, out := range cl.Outputs {
				if p, ok := cl.Plan.Assign[oi]; ok && p == pi {
					e := a.CD.Elems[out.Elem]
					fmt.Printf("    capture %-4s closure at window position %v\n",
						e.Name(), breakopen.ClosePos(e.IdealClose, beta, T))
				}
			}
		}
		// The two settling times of net m, one per pass.
		fmt.Println("  settling times of the shared net m:")
		for _, pd := range rep.Result.Passes {
			if pd.Cluster != cl.ID {
				continue
			}
			li := cl.LocalIndex(mid)
			ready := pd.ReadyR[li]
			if pd.ReadyF[li] > ready {
				ready = pd.ReadyF[li]
			}
			fmt.Printf("    pass %d (break %v): settles %v after window start\n",
				pd.Pass, pd.Beta, ready)
		}
	}

	fmt.Println("\nfull pass plan:")
	report.Plan(os.Stdout, a)
}
