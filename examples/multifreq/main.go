// Multifreq: multi-frequency clocking. A slow 100ns clock and a fast 50ns
// clock share one design: the fast-clocked flip-flop is represented by two
// generic synchronising elements "connected in parallel" (§4), one per
// control pulse in the overall period. The example also demonstrates the
// supplementary (double-clocking) path check — a hazard the paper defines
// but its algorithms do not detect — and the minimum-feasible-period
// search built on the interactive clock-reshaping facility of §8.
//
// Run with:
//
//	go run ./examples/multifreq
package main

import (
	"fmt"
	"log"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
)

const text = `
design multifreq
clock slow period 100ns rise 0 fall 40ns
clock fast period 50ns rise 20ns fall 45ns
input IN clock slow edge fall offset 0
output OUT clock slow edge fall offset 0
inst f1 DFF_X1 D=IN CK=slow Q=q1
inst g1 BUF_X1 A=q1 Y=n1
inst f2 DFF_X1 D=n1 CK=fast Q=q2
inst g2 INV_X1 A=q2 Y=n2
inst f3 DFF_X1 D=n2 CK=slow Q=q3
inst g3 BUF_X1 A=q3 Y=OUT
end
`

func main() {
	lib := celllib.Default()
	d, err := netlist.ParseString(text)
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall clock period: %v (lcm of 100ns and 50ns)\n", a.CD.Clocks.Overall())

	// Element replication.
	for _, name := range []string{"f1", "f2", "f3"} {
		ids := a.CD.ElemsOf(name)
		fmt.Printf("%s: %d generic element(s):", name, len(ids))
		for _, ei := range ids {
			e := a.CD.Elems[ei]
			fmt.Printf("  [capture %v]", e.IdealClose)
		}
		fmt.Println()
	}

	rep, err := a.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax-delay analysis: ok=%v, worst slack %v\n", rep.OK, rep.WorstSlack())

	// The slow->fast crossing captures the same launched data twice per
	// overall period; the second capture expects the *next* value, so the
	// fast path must not race through: the supplementary constraint.
	fmt.Println("\nsupplementary (double-clocking) checks:")
	viol := a.CheckSupplementary()
	if len(viol) == 0 {
		fmt.Println("  all satisfied")
	}
	for _, v := range viol {
		fmt.Printf("  VIOLATION %s -> %s: min path delay %v must exceed %v\n",
			a.CD.Elems[v.FromElem].Name(), a.CD.Elems[v.ToElem].Name(), v.MinDelay, v.Bound)
	}

	// How fast could this design be clocked?
	min, err := core.MinFeasiblePeriod(lib, d, core.DefaultOptions(), 1*clock.Ns, 100*clock.Ns, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum feasible slow-clock period (proportional scaling): %v\n", min)
}
