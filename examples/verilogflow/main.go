// Verilogflow: analysing gate-level structural Verilog. The importer maps
// a Verilog-1995 structural subset onto the netlist model; a constraints
// file (netlist syntax, clocks and port timing only) supplies what Verilog
// cannot express. A clock named after the Verilog clock input port
// replaces that port, so latch control pins resolve to the clock
// generator's net unchanged.
//
// Run with:
//
//	go run ./examples/verilogflow
package main

import (
	"fmt"
	"log"
	"os"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/report"
	"hummingbird/internal/verilog"
)

const topV = `
// two-phase pipeline, gate-level
module stage(a, en, q);
  input a, en;
  output q;
  wire n1;
  INV_X1 g1(.A(a), .Y(n1));
  DLATCH_X1 l1(.D(n1), .G(en), .Q(q));
endmodule

module top(din, phi1, phi2, dout);
  input din, phi1, phi2;
  output dout;
  wire s1, s2;
  stage u1(.a(din), .en(phi1), .q(s1));
  stage u2(.a(s1), .en(phi2), .q(s2));
  BUF_X1 g9(.A(s2), .Y(dout));
endmodule
`

const constraints = `
design timing
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input din clock phi2 edge fall offset 0
output dout clock phi1 edge fall offset -0.5ns
end
`

func main() {
	d, err := verilog.ImportString(topV, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %q: %d top instances, %d submodules\n",
		d.Name, len(d.Instances), len(d.Modules))

	cons, err := netlist.ParseString(constraints)
	if err != nil {
		log.Fatal(err)
	}
	if err := verilog.Constrain(d, cons); err != nil {
		log.Fatal(err)
	}
	fmt.Println("constraints merged: clocks phi1/phi2, port timing attached")

	// Note: "stage" contains a latch, so it cannot be rolled up as a
	// combinational module — flatten instead.
	lib := celllib.Default()
	flat := d.Flatten(lib)
	a, err := core.Load(lib, flat, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	report.Summary(os.Stdout, a, rep)
	fmt.Println()
	report.Endpoints(os.Stdout, a, rep.Result, 8)
	fmt.Println()
	report.ClockSkew(os.Stdout, a)
}
