// Borrowing: demonstrates the transparent-latch cycle borrowing that the
// paper's slack-transfer algorithm performs and the McWilliams-class
// opaque-latch baseline cannot model.
//
// The design has a deliberately unbalanced pipeline: almost no logic before
// a transparent latch and a 30-gate chain after it. With the latch treated
// as opaque (assert at the trailing control edge) the chain misses the
// capture edge; with the paper's model, Algorithm 1 slides the latch's
// offsets inside the transparency window (forward slack transfer) and the
// design passes. A second network shows the same mechanism around a
// combinational cycle traversing two latches (§3's "interesting feature").
//
// Run with:
//
//	go run ./examples/borrowing
package main

import (
	"fmt"
	"log"
	"strings"

	"hummingbird/internal/baseline"
	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
)

func pipelineText() string {
	var sb strings.Builder
	sb.WriteString(`
design borrow
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUF_X1 A=IN Y=w0
inst l1 DLATCH_X1 D=w0 G=phi1 Q=c0
`)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "inst c%d INV_X1 A=c%d Y=c%d\n", i, i, i+1)
	}
	sb.WriteString(`inst f2 DFF_X1 D=c30 CK=phi2 Q=q2
inst g3 BUF_X1 A=q2 Y=OUT
end
`)
	return sb.String()
}

const loopText = `
design latchloop
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XOR2_X1 A=IN B=fb Y=d1
inst l1 DLATCH_X1 D=d1 G=phi1 Q=q1
inst h1 INV_X1 A=q1 Y=h1n
inst h2 INV_X1 A=h1n Y=h2n
inst h3 INV_X1 A=h2n Y=h3n
inst l2 DLATCH_X1 D=h3n G=phi2 Q=q2
inst k1 INV_X1 A=q2 Y=k1n
inst k2 INV_X1 A=k1n Y=fb
inst g3 BUF_X1 A=q1 Y=OUT
end
`

func main() {
	lib := celllib.Default()

	fmt.Println("== unbalanced pipeline: 30 gates after a transparent latch ==")
	d, err := netlist.ParseString(pipelineText())
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := baseline.CompareBorrowing(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transparent-latch model (this paper): ok=%v, worst slack %v\n",
		cmp.TransparentOK, cmp.TransparentWorst)
	fmt.Printf("opaque-latch baseline (McWilliams):   ok=%v, worst slack %v (%d slow terminals)\n",
		cmp.OpaqueOK, cmp.OpaqueWorst, cmp.OpaqueSlow)

	// Show how far the latch actually borrowed.
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := a.IdentifySlowPaths(); err != nil {
		log.Fatal(err)
	}
	for _, ei := range a.CD.ElemsOf("l1") {
		e := a.CD.Elems[ei]
		odz := a.St.Odz[ei]
		fmt.Printf("latch l1: Odz settled at %v (legal range [%v, %v]); output asserts at %v\n",
			odz, e.OdzMin(), e.OdzMax(), e.OutputAssertAt(odz))
	}

	fmt.Println("\n== combinational cycle traversing two transparent latches ==")
	d2, err := netlist.ParseString(loopText)
	if err != nil {
		log.Fatal(err)
	}
	a2, err := core.Load(lib, d2, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := a2.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latch loop: ok=%v, worst slack %v, %d clusters\n",
		rep2.OK, rep2.WorstSlack(), len(a2.CD.Clusters))
	fmt.Println("(the loop is legal: only portions of combinational logic must be acyclic, §3)")
}
