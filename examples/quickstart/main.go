// Quickstart: build a small two-phase latch pipeline with the public API,
// run the slow-path identification of Algorithm 1, and print the verdict,
// the tightest slacks and the cluster pass plan.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/report"
)

func main() {
	// 1. A standard-cell library. Default() is a synthetic ~1µm CMOS
	//    library with gates in three drive strengths plus transparent
	//    latches (DLATCH), flip-flops (DFF) and tristate drivers (TBUF).
	lib := celllib.Default()

	// 2. A design: two non-overlapping clock phases, one transparent
	//    latch stage and one flip-flop stage. Primary ports reference
	//    clock edges for their assertion/closure times.
	d := netlist.New("quickstart")
	d.AddClock(clock.Signal{Name: "phi1", Period: 10 * clock.Ns, RiseAt: 0, FallAt: 4 * clock.Ns})
	d.AddClock(clock.Signal{Name: "phi2", Period: 10 * clock.Ns, RiseAt: 5 * clock.Ns, FallAt: 9 * clock.Ns})
	d.AddPort(netlist.Port{Name: "IN", Dir: netlist.Input, RefClock: "phi2", RefEdge: clock.Fall})
	d.AddPort(netlist.Port{Name: "OUT", Dir: netlist.Output, RefClock: "phi2", RefEdge: clock.Fall, Offset: -500})

	add := func(name, ref string, conns map[string]string) {
		d.AddInstance(netlist.Instance{Name: name, Ref: ref, Conns: conns})
	}
	add("g1", "BUF_X1", map[string]string{"A": "IN", "Y": "n1"})
	add("l1", "DLATCH_X1", map[string]string{"D": "n1", "G": "phi1", "Q": "q1"})
	add("g2", "INV_X1", map[string]string{"A": "q1", "Y": "n2"})
	add("g3", "NAND2_X1", map[string]string{"A": "n2", "B": "q1", "Y": "n3"})
	add("l2", "DFF_X1", map[string]string{"D": "n3", "CK": "phi2", "Q": "q2"})
	add("g4", "BUF_X2", map[string]string{"A": "q2", "Y": "OUT"})

	// 3. Load: validates the netlist, resolves hierarchy, evaluates the
	//    load-dependent component delays and elaborates the timing network
	//    (clusters, control paths, break-open pass plans).
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Algorithm 1: identification of slow paths.
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		log.Fatal(err)
	}
	report.Summary(os.Stdout, a, rep)
	fmt.Println()

	fmt.Println("tightest net slacks:")
	report.Slacks(os.Stdout, a, rep.Result, 5)
	fmt.Println()

	fmt.Println("cluster pass plan (§7 pre-processing):")
	report.Plan(os.Stdout, a)

	// 5. Algorithm 2: delay budgets for re-synthesis.
	c, err := a.GenerateConstraints()
	if err != nil {
		log.Fatal(err)
	}
	n2, n3 := a.CD.NetIdx["n2"], a.CD.NetIdx["n3"]
	fmt.Printf("\nallowed delay budget n2 -> n3: %v\n", c.Allowed(n2, n3))
}
