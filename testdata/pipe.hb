# two-phase transparent-latch pipeline demo
design pipe
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset -0.5ns
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst l2 DFF_X1 D=n3 CK=phi2 Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
